package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Program is the unit of inter-procedural analysis: every package one
// Load call returned, plus a lazily-built call graph and the memoized
// per-function facts (lock acquisitions, blocking operations) the
// inter-procedural analyzers share. Analyzers still run and report
// per package — a Pass carries its Program in Pass.Prog — but their
// facts may come from any function in the program, so a lock taken in
// internal/rt/resource is visible to a caller in internal/rt.
//
// Callee resolution is deliberately modest and stdlib-only:
//
//   - static calls and method calls resolve through go/types
//     (Uses/Selections), across packages;
//   - calls through function values resolve flow-insensitively: every
//     function ever assigned to a variable, struct field, or passed as
//     an argument for a func-typed parameter is a possible target of a
//     call through that variable, field, or parameter;
//   - interface method calls resolve by class-hierarchy analysis
//     restricted to interfaces declared in the analyzed packages
//     (first-party). Stdlib interfaces (io.Writer, error) are not
//     expanded — doing so would make every Write in the program a
//     possible callee of every io.Writer call and drown the analyzers
//     in impossible paths.
//
// Goroutine launches and deferred calls are not call edges: a spawned
// goroutine does not hold its creator's locks (its body is analyzed as
// an independent root), and deferred calls run at exit where the held
// set is unknowable intra-procedurally.
type Program struct {
	Pkgs []*Package

	built  bool
	nodes  []*FuncNode
	byFunc map[*types.Func]*FuncNode
	byLit  map[*ast.FuncLit]*FuncNode
	// flow maps a func-typed variable, field, or parameter to every
	// function value observed flowing into it anywhere in the program.
	flow map[types.Object]map[*FuncNode]bool
	// ifaceImpls maps a first-party interface method to the concrete
	// first-party methods that can stand behind it.
	ifaceImpls map[ifaceMethod][]*FuncNode

	summaries map[*FuncNode]*funcSummary

	acquireMemo map[*FuncNode]map[string]acqChain
	acquireBusy map[*FuncNode]bool
	blockMemo   map[*FuncNode]*blockChain
	blockBusy   map[*FuncNode]bool
	blockDone   map[*FuncNode]bool

	lockFindingsOnce bool
	lockFindings     []progFinding

	atomicOnce  bool
	atomicFacts *atomicFacts
}

type ifaceMethod struct {
	iface  *types.TypeName
	method string
}

// FuncNode is one analyzable function body: a declared function or
// method, or a function literal.
type FuncNode struct {
	Fn   *types.Func  // nil for function literals
	Lit  *ast.FuncLit // nil for declared functions
	Body *ast.BlockStmt
	Pkg  *Package

	name string
}

// Name renders the node for witness paths: "rt.(*Dispatcher).drawBatch"
// for methods, "rt.reweigh" for functions, "rt.func@file:line" for
// literals.
func (n *FuncNode) Name() string { return n.name }

// NewProgram wraps loaded packages for inter-procedural analysis. The
// call graph and all derived facts are built lazily on first use.
func NewProgram(pkgs []*Package) *Program {
	return &Program{Pkgs: pkgs}
}

func (p *Program) pkgOf(path string) *Package {
	for _, pkg := range p.Pkgs {
		if pkg.PkgPath == path {
			return pkg
		}
	}
	return nil
}

func (p *Program) build() {
	if p.built {
		return
	}
	p.built = true
	p.byFunc = make(map[*types.Func]*FuncNode)
	p.byLit = make(map[*ast.FuncLit]*FuncNode)
	p.flow = make(map[types.Object]map[*FuncNode]bool)
	p.ifaceImpls = make(map[ifaceMethod][]*FuncNode)
	p.summaries = make(map[*FuncNode]*funcSummary)
	p.acquireMemo = make(map[*FuncNode]map[string]acqChain)
	p.acquireBusy = make(map[*FuncNode]bool)
	p.blockMemo = make(map[*FuncNode]*blockChain)
	p.blockBusy = make(map[*FuncNode]bool)
	p.blockDone = make(map[*FuncNode]bool)

	for _, pkg := range p.Pkgs {
		for _, f := range pkg.Syntax {
			p.collectNodes(pkg, f)
		}
	}
	for _, pkg := range p.Pkgs {
		for _, f := range pkg.Syntax {
			p.collectFlow(pkg, f)
		}
	}
	p.collectIfaceImpls()
	sort.Slice(p.nodes, func(i, j int) bool { return p.nodes[i].Body.Pos() < p.nodes[j].Body.Pos() })
}

func (p *Program) collectNodes(pkg *Package, f *ast.File) {
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		fn, _ := pkg.TypesInfo.Defs[fd.Name].(*types.Func)
		if fn == nil {
			continue
		}
		node := &FuncNode{Fn: fn, Body: fd.Body, Pkg: pkg, name: declaredFuncName(fn)}
		p.byFunc[fn] = node
		p.nodes = append(p.nodes, node)
	}
	ast.Inspect(f, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		pos := pkg.Fset.Position(lit.Pos())
		node := &FuncNode{Lit: lit, Body: lit.Body, Pkg: pkg,
			name: fmt.Sprintf("%s.func@%s:%d", pkg.Types.Name(), shortFile(pos.Filename), pos.Line)}
		p.byLit[lit] = node
		p.nodes = append(p.nodes, node)
		return true
	})
}

func declaredFuncName(fn *types.Func) string {
	sig, _ := fn.Type().(*types.Signature)
	pkgName := ""
	if fn.Pkg() != nil {
		pkgName = fn.Pkg().Name()
	}
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		star := ""
		if ptr, ok := t.(*types.Pointer); ok {
			t, star = ptr.Elem(), "*"
		}
		if named, ok := t.(*types.Named); ok {
			return fmt.Sprintf("%s.(%s%s).%s", pkgName, star, named.Obj().Name(), fn.Name())
		}
	}
	return pkgName + "." + fn.Name()
}

func shortFile(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// collectFlow records which function values flow into which func-typed
// variables, fields, and parameters: assignments, var declarations,
// composite literals, and call arguments. Flow through returns and
// maps/slices is not tracked (documented limitation; the repository's
// function values are observers and check hooks, all covered by the
// tracked forms).
func (p *Program) collectFlow(pkg *Package, f *ast.File) {
	info := pkg.TypesInfo
	record := func(obj types.Object, e ast.Expr) {
		if obj == nil {
			return
		}
		if _, ok := obj.Type().Underlying().(*types.Signature); !ok {
			return
		}
		for _, target := range p.funcRefs(pkg, e) {
			set := p.flow[obj]
			if set == nil {
				set = make(map[*FuncNode]bool)
				p.flow[obj] = set
			}
			set[target] = true
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if len(x.Lhs) != len(x.Rhs) {
				return true
			}
			for i, lhs := range x.Lhs {
				record(assignedObj(info, lhs), x.Rhs[i])
			}
		case *ast.ValueSpec:
			if len(x.Names) != len(x.Values) {
				return true
			}
			for i, name := range x.Names {
				record(info.Defs[name], x.Values[i])
			}
		case *ast.CompositeLit:
			for _, elt := range x.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				key, ok := kv.Key.(*ast.Ident)
				if !ok {
					continue
				}
				record(info.Uses[key], kv.Value)
			}
		case *ast.CallExpr:
			fn := calleeFunc(info, x)
			if fn == nil || p.byFunc[fn] == nil {
				return true
			}
			sig, _ := fn.Type().(*types.Signature)
			if sig == nil {
				return true
			}
			for i, arg := range x.Args {
				if i >= sig.Params().Len() {
					break // variadic tail beyond the last parameter
				}
				record(sig.Params().At(i), arg)
			}
		}
		return true
	})
}

func assignedObj(info *types.Info, lhs ast.Expr) types.Object {
	switch x := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if obj := info.Defs[x]; obj != nil {
			return obj
		}
		return info.Uses[x]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[x]; ok && sel.Kind() == types.FieldVal {
			return sel.Obj()
		}
	}
	return nil
}

// funcRefs resolves an expression to the function nodes it can denote:
// a function literal, a reference to a declared function, or a method
// value.
func (p *Program) funcRefs(pkg *Package, e ast.Expr) []*FuncNode {
	switch x := ast.Unparen(e).(type) {
	case *ast.FuncLit:
		if node := p.byLit[x]; node != nil {
			return []*FuncNode{node}
		}
	case *ast.Ident:
		if fn, ok := pkg.TypesInfo.Uses[x].(*types.Func); ok {
			if node := p.byFunc[fn]; node != nil {
				return []*FuncNode{node}
			}
		}
	case *ast.SelectorExpr:
		var fn *types.Func
		if sel, ok := pkg.TypesInfo.Selections[x]; ok {
			fn, _ = sel.Obj().(*types.Func)
		} else {
			fn, _ = pkg.TypesInfo.Uses[x.Sel].(*types.Func)
		}
		if fn != nil {
			if node := p.byFunc[fn]; node != nil {
				return []*FuncNode{node}
			}
		}
	case *ast.CallExpr:
		// A conversion like ObserverFunc(f) transports f unchanged.
		if len(x.Args) == 1 {
			if tv, ok := pkg.TypesInfo.Types[x.Fun]; ok && tv.IsType() {
				return p.funcRefs(pkg, x.Args[0])
			}
		}
	}
	return nil
}

// collectIfaceImpls builds the restricted CHA table: for every
// interface declared in an analyzed package, every analyzed named type
// whose method set satisfies it contributes its methods as possible
// callees of the interface's.
func (p *Program) collectIfaceImpls() {
	var ifaces []*types.TypeName
	var concrete []types.Type
	for _, pkg := range p.Pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if iface, ok := named.Underlying().(*types.Interface); ok {
				if iface.NumMethods() > 0 {
					ifaces = append(ifaces, tn)
				}
				continue
			}
			concrete = append(concrete, named)
		}
	}
	for _, tn := range ifaces {
		iface := tn.Type().Underlying().(*types.Interface)
		for _, ct := range concrete {
			impl := types.NewPointer(ct)
			if !types.Implements(impl, iface) && !types.Implements(ct, iface) {
				continue
			}
			mset := types.NewMethodSet(impl)
			for i := 0; i < iface.NumMethods(); i++ {
				m := iface.Method(i)
				sel := mset.Lookup(m.Pkg(), m.Name())
				if sel == nil {
					continue
				}
				fn, _ := sel.Obj().(*types.Func)
				if fn == nil {
					continue
				}
				if node := p.byFunc[fn]; node != nil {
					key := ifaceMethod{tn, m.Name()}
					p.ifaceImpls[key] = append(p.ifaceImpls[key], node)
				}
			}
		}
	}
}

// callTargets resolves a call expression to the analyzable functions
// it can invoke, or nil when every possible callee is outside the
// program (stdlib, export-data-only dependencies).
func (p *Program) callTargets(pkg *Package, call *ast.CallExpr) []*FuncNode {
	info := pkg.TypesInfo
	if fn := calleeFunc(info, call); fn != nil {
		if node := p.byFunc[fn]; node != nil {
			return []*FuncNode{node}
		}
		// Interface method: expand via CHA when the interface is
		// first-party.
		sig, _ := fn.Type().(*types.Signature)
		if sig != nil && sig.Recv() != nil {
			if named, ok := derefType(sig.Recv().Type()).(*types.Named); ok {
				if _, isIface := named.Underlying().(*types.Interface); isIface {
					if p.pkgOf(pkgPathOf(named.Obj())) != nil {
						return p.ifaceImpls[ifaceMethod{named.Obj(), fn.Name()}]
					}
				}
			}
		}
		return nil
	}
	// Dynamic call through a func-typed variable, field, or parameter.
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if obj := info.Uses[fun]; obj != nil {
			return flowList(p.flow[obj])
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok && sel.Kind() == types.FieldVal {
			return flowList(p.flow[sel.Obj()])
		}
	}
	return nil
}

func flowList(set map[*FuncNode]bool) []*FuncNode {
	if len(set) == 0 {
		return nil
	}
	out := make([]*FuncNode, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Body.Pos() < out[j].Body.Pos() })
	return out
}

func derefType(t types.Type) types.Type {
	if ptr, ok := t.(*types.Pointer); ok {
		return ptr.Elem()
	}
	return t
}

func pkgPathOf(obj types.Object) string {
	if obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// ---- per-function summaries -------------------------------------------------

// heldRef is one lock held at a program point: its global class (empty
// for locks the class resolver cannot name, e.g. function locals), the
// intra-procedural expression path that acquired it, and the
// acquisition site.
type heldRef struct {
	class string
	path  string
	pos   token.Pos
}

type acqEvent struct {
	class string
	path  string
	pos   token.Pos
	held  []heldRef
}

type blockEvent struct {
	desc string // human description: "channel send", "span emission (audit.Tracer.Emit)", ...
	pos  token.Pos
	held []heldRef
}

type callEvent struct {
	targets []*FuncNode
	pos     token.Pos
	held    []heldRef
}

// funcSummary is what the shared lock walker computes for one
// function: every lock acquisition, potentially-blocking operation,
// and resolvable call, each annotated with the set of locks held at
// that point. Events are recorded regardless of the held set — a
// function that blocks while holding nothing still "may block" for its
// callers.
type funcSummary struct {
	acquires []acqEvent
	blocks   []blockEvent
	calls    []callEvent
}

func (p *Program) summary(n *FuncNode) *funcSummary {
	p.build()
	if s := p.summaries[n]; s != nil {
		return s
	}
	s := &funcSummary{}
	p.summaries[n] = s
	w := &summaryWalker{prog: p, pkg: n.Pkg, sum: s}
	w.stmts(n.Body.List, map[string]heldRef{})
	return s
}

// ---- transitive facts -------------------------------------------------------

// acqChain is a witness that a function (transitively) acquires a lock
// class: the acquisition site and the call chain leading to it, outermost
// callee first. An empty via means the function acquires it directly.
type acqChain struct {
	pos token.Pos
	via []*FuncNode
}

// mayAcquire returns every lock class the function can acquire,
// directly or through calls, with one witness chain per class.
// Recursion through call cycles terminates by treating the
// in-progress function as acquiring nothing new.
func (p *Program) mayAcquire(n *FuncNode) map[string]acqChain {
	p.build()
	if m, ok := p.acquireMemo[n]; ok {
		return m
	}
	if p.acquireBusy[n] {
		return nil
	}
	p.acquireBusy[n] = true
	defer delete(p.acquireBusy, n)

	out := make(map[string]acqChain)
	s := p.summary(n)
	for _, a := range s.acquires {
		if a.class == "" {
			continue
		}
		if _, ok := out[a.class]; !ok {
			out[a.class] = acqChain{pos: a.pos}
		}
	}
	for _, c := range s.calls {
		for _, t := range c.targets {
			for class, sub := range p.mayAcquire(t) {
				if _, ok := out[class]; ok {
					continue
				}
				via := make([]*FuncNode, 0, 1+len(sub.via))
				via = append(append(via, t), sub.via...)
				out[class] = acqChain{pos: sub.pos, via: via}
			}
		}
	}
	p.acquireMemo[n] = out
	return out
}

// blockChain is a witness that a function may block: the description
// and site of the leaf blocking operation, and the call chain from the
// summarized function down to it (outermost callee first; empty when
// the function blocks directly).
type blockChain struct {
	desc string
	pos  token.Pos
	via  []*FuncNode
}

// mayBlock returns a witness that the function can reach a blocking
// operation, or nil. Like mayAcquire, call cycles terminate by
// treating in-progress functions as non-blocking.
func (p *Program) mayBlock(n *FuncNode) *blockChain {
	p.build()
	if p.blockDone[n] {
		return p.blockMemo[n]
	}
	if p.blockBusy[n] {
		return nil
	}
	p.blockBusy[n] = true
	defer delete(p.blockBusy, n)

	var found *blockChain
	s := p.summary(n)
	if len(s.blocks) > 0 {
		b := s.blocks[0]
		found = &blockChain{desc: b.desc, pos: b.pos}
	} else {
	outer:
		for _, c := range s.calls {
			for _, t := range c.targets {
				if sub := p.mayBlock(t); sub != nil {
					via := make([]*FuncNode, 0, 1+len(sub.via))
					via = append(append(via, t), sub.via...)
					found = &blockChain{desc: sub.desc, pos: sub.pos, via: via}
					break outer
				}
			}
		}
	}
	p.blockDone[n] = true
	p.blockMemo[n] = found
	return found
}

// witnessPath renders "f → g → h" for a chain starting at root.
func witnessPath(root *FuncNode, via []*FuncNode) string {
	parts := make([]string, 0, 1+len(via))
	parts = append(parts, root.Name())
	for _, n := range via {
		parts = append(parts, n.Name())
	}
	return strings.Join(parts, " → ")
}

// progFinding is a program-level diagnostic pinned to the package it
// should be reported from, so per-package passes emit each exactly
// once.
type progFinding struct {
	pkg *Package
	pos token.Pos
	msg string
}

// ---- shared lock walker -----------------------------------------------------

// summaryWalker is the shared statement walker: it tracks the held
// lock set with lockemit's original intra-procedural semantics
// (matching Lock/Unlock in a statement list, defer Unlock holding to
// function end, branch bodies inheriting a copy, goroutines starting
// lock-free, immediately-invoked literals running under the caller's
// locks, and the lockShard-helper contract) and records acquisition,
// blocking, and call events into the function's summary.
type summaryWalker struct {
	prog *Program
	pkg  *Package
	sum  *funcSummary
}

func heldSnapshot(held map[string]heldRef) []heldRef {
	if len(held) == 0 {
		return nil
	}
	out := make([]heldRef, 0, len(held))
	for _, h := range held {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].path < out[j].path })
	return out
}

func (w *summaryWalker) stmts(list []ast.Stmt, held map[string]heldRef) {
	for _, stmt := range list {
		w.stmt(stmt, held)
	}
}

func (w *summaryWalker) stmt(stmt ast.Stmt, held map[string]heldRef) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if path, op, ok := w.lockOp(s.X); ok {
			switch op {
			case lockAcquire:
				class := w.lockClass(s.X)
				w.sum.acquires = append(w.sum.acquires, acqEvent{
					class: class, path: path, pos: s.Pos(), held: heldSnapshot(held)})
				held[path] = heldRef{class: class, path: path, pos: s.Pos()}
			case lockRelease:
				delete(held, path)
			}
			return
		}
		w.expr(s.X, held)
	case *ast.DeferStmt:
		// defer x.Unlock() keeps the lock held to the end of this walk;
		// other deferred calls run at exit, outside any section this
		// walker can reason about, and are not scanned.
		if _, op, ok := w.lockOp(s.Call); ok && op == lockRelease {
			return
		}
	case *ast.SendStmt:
		w.block(s.Pos(), held, "channel send")
		w.expr(s.Chan, held)
		w.expr(s.Value, held)
	case *ast.GoStmt:
		// The new goroutine does not hold the caller's locks; only the
		// argument expressions evaluate now. Its body is analyzed as an
		// independent root.
		for _, arg := range s.Call.Args {
			w.expr(arg, held)
		}
	case *ast.AssignStmt:
		// sh := c.lockShard() (and the reacquire form sh = ...) returns
		// with the shard mutex held: open a section on "<lhs>.mu", the
		// same key its literal sh.mu.Unlock() will close.
		if name, class, ok := w.lockShardAssign(s); ok {
			w.expr(s.Rhs[0], held)
			path := name + ".mu"
			w.sum.acquires = append(w.sum.acquires, acqEvent{
				class: class, path: path, pos: s.Pos(), held: heldSnapshot(held)})
			held[path] = heldRef{class: class, path: path, pos: s.Pos()}
			return
		}
		for _, e := range s.Rhs {
			w.expr(e, held)
		}
		for _, e := range s.Lhs {
			w.expr(e, held)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e, held)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		w.expr(s.Cond, held)
		w.stmts(s.Body.List, copyHeld(held))
		if s.Else != nil {
			w.stmt(s.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		if s.Cond != nil {
			w.expr(s.Cond, held)
		}
		w.stmts(s.Body.List, copyHeld(held))
	case *ast.RangeStmt:
		w.expr(s.X, held)
		w.stmts(s.Body.List, copyHeld(held))
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		if s.Tag != nil {
			w.expr(s.Tag, held)
		}
		for _, cc := range s.Body.List {
			if c, ok := cc.(*ast.CaseClause); ok {
				w.stmts(c.Body, copyHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, cc := range s.Body.List {
			if c, ok := cc.(*ast.CaseClause); ok {
				w.stmts(c.Body, copyHeld(held))
			}
		}
	case *ast.SelectStmt:
		if hasCommClause(s) {
			w.block(s.Pos(), held, "select over channels")
		}
		for _, cc := range s.Body.List {
			if c, ok := cc.(*ast.CommClause); ok {
				w.stmts(c.Body, copyHeld(held))
			}
		}
	case *ast.BlockStmt:
		w.stmts(s.List, copyHeld(held))
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, held)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v, held)
					}
				}
			}
		}
	}
}

// expr scans an expression subtree. Function literal bodies are
// skipped unless immediately invoked — a stored literal is analyzed as
// its own root and reached through call edges instead.
func (w *summaryWalker) expr(e ast.Expr, held map[string]heldRef) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				w.block(x.Pos(), held, "channel receive")
			}
		case *ast.CallExpr:
			if lit, ok := x.Fun.(*ast.FuncLit); ok {
				// Immediately-invoked literal runs under the lock.
				w.stmts(lit.Body.List, copyHeld(held))
				for _, arg := range x.Args {
					w.expr(arg, held)
				}
				return false
			}
			w.call(x, held)
		}
		return true
	})
}

// call classifies a call: known-blocking operations become block
// events (by name class — Observe/Emit/Wait/Sleep — or by the
// syscall-backed stdlib list), and calls into analyzable functions
// become call edges for the transitive analyses.
func (w *summaryWalker) call(call *ast.CallExpr, held map[string]heldRef) {
	fn := calleeFunc(w.pkg.TypesInfo, call)
	if fn != nil {
		sig, _ := fn.Type().(*types.Signature)
		switch {
		case fn.Name() == "Observe" && sig != nil && sig.Recv() != nil:
			w.block(call.Pos(), held, "observer event emission (%s.Observe)", recvTypeString(sig))
			return
		case fn.Name() == "Emit" && sig != nil && sig.Recv() != nil:
			w.block(call.Pos(), held, "span emission (%s.Emit)", recvTypeString(sig))
			return
		case fn.Name() == "Sleep" && fn.Pkg() != nil && fn.Pkg().Path() == "time":
			w.block(call.Pos(), held, "blocking call time.Sleep")
			return
		case fn.Name() == "Wait" && sig != nil && sig.Recv() != nil && !isSyncCondRecv(sig):
			w.block(call.Pos(), held, "blocking call %s.Wait", recvTypeString(sig))
			return
		case isBlockingStdlib(fn):
			w.block(call.Pos(), held, "blocking call %s.%s", fn.Pkg().Name(), fn.Name())
			return
		}
	}
	if targets := w.prog.callTargets(w.pkg, call); len(targets) > 0 {
		w.sum.calls = append(w.sum.calls, callEvent{
			targets: targets, pos: call.Pos(), held: heldSnapshot(held)})
	}
}

func (w *summaryWalker) block(pos token.Pos, held map[string]heldRef, format string, args ...any) {
	w.sum.blocks = append(w.sum.blocks, blockEvent{
		desc: fmt.Sprintf(format, args...), pos: pos, held: heldSnapshot(held)})
}

// blockingStdlib lists syscall-backed stdlib operations that can block
// indefinitely: file and network I/O, subprocess waits. The list only
// seeds the analysis — anything that reaches these through first-party
// calls is caught by reachability, so it does not need the exhaustive
// curation lockemit's hand-maintained emit list did.
var blockingStdlib = map[string]map[string]bool{
	"os":       {"Read": true, "Write": true, "ReadAt": true, "WriteAt": true, "Sync": true, "ReadFile": true, "WriteFile": true},
	"os/exec":  {"Run": true, "Wait": true, "Output": true, "CombinedOutput": true},
	"net":      {"Dial": true, "DialTimeout": true, "Listen": true, "Accept": true, "Read": true, "Write": true},
	"net/http": {"Do": true, "Get": true, "Post": true, "PostForm": true, "Head": true, "Serve": true, "ListenAndServe": true},
	"io":       {"ReadAll": true, "Copy": true, "CopyN": true, "ReadFull": true},
	"syscall":  {"Read": true, "Write": true, "Wait4": true},
}

func isBlockingStdlib(fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	return blockingStdlib[fn.Pkg().Path()][fn.Name()]
}

// lockClass names the mutex a Lock call acquires globally:
// "pkgpath.Type.field" for fields of named structs, "pkgpath.var" for
// package-level mutexes, "" for locks the resolver cannot name
// (function locals, fields of anonymous structs). The class is what
// the declared lock order ranks and what inter-procedural witnesses
// carry across frames.
func (w *summaryWalker) lockClass(e ast.Expr) string {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return ""
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	return lockClassOfExpr(w.pkg.TypesInfo, sel.X)
}

func lockClassOfExpr(info *types.Info, e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		sel, ok := info.Selections[x]
		if !ok || sel.Kind() != types.FieldVal {
			return ""
		}
		named, ok := derefType(sel.Recv()).(*types.Named)
		if !ok {
			return ""
		}
		return fieldLockClass(named, x.Sel.Name)
	case *ast.Ident:
		v, ok := info.Uses[x].(*types.Var)
		if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
			return ""
		}
		return v.Pkg().Path() + "." + v.Name()
	}
	return ""
}

func fieldLockClass(named *types.Named, field string) string {
	if named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + field
}

type lockOpKind int

const (
	lockAcquire lockOpKind = iota
	lockRelease
)

// lockOp recognizes x.Lock()/x.RLock()/x.Unlock()/x.RUnlock() calls on
// sync.Mutex or sync.RWMutex values with a nameable receiver path.
func (w *summaryWalker) lockOp(e ast.Expr) (path string, op lockOpKind, ok bool) {
	call, isCall := e.(*ast.CallExpr)
	if !isCall {
		return "", 0, false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", 0, false
	}
	fn := calleeFunc(w.pkg.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", 0, false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return "", 0, false
	}
	recv := namedRecvName(sig)
	if recv != "Mutex" && recv != "RWMutex" {
		return "", 0, false
	}
	path, ok = exprPath(sel.X)
	if !ok {
		return "", 0, false
	}
	switch fn.Name() {
	case "Lock", "RLock":
		return path, lockAcquire, true
	case "Unlock", "RUnlock":
		return path, lockRelease, true
	}
	return "", 0, false
}

// lockShardAssign recognizes `sh := c.lockShard()` / `sh = c.lockShard()`
// — a single identifier assigned from a method call whose static
// callee is named lockShard. The helper's contract is that it returns
// its receiver's shard with that shard's mutex held.
func (w *summaryWalker) lockShardAssign(s *ast.AssignStmt) (name, class string, ok bool) {
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return "", "", false
	}
	id, isIdent := s.Lhs[0].(*ast.Ident)
	if !isIdent || id.Name == "_" {
		return "", "", false
	}
	call, isCall := s.Rhs[0].(*ast.CallExpr)
	if !isCall {
		return "", "", false
	}
	fn := calleeFunc(w.pkg.TypesInfo, call)
	if fn == nil || fn.Name() != "lockShard" {
		return "", "", false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return "", "", false
	}
	if sig.Results().Len() == 1 {
		if named, isNamed := derefType(sig.Results().At(0).Type()).(*types.Named); isNamed {
			class = fieldLockClass(named, "mu")
		}
	}
	return id.Name, class, true
}

// exprPath renders a selector/identifier chain ("d.mu", "c.d.mu") as a
// stable key; expressions with calls or indexing are not tracked.
func exprPath(e ast.Expr) (string, bool) {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name, true
	case *ast.SelectorExpr:
		base, ok := exprPath(x.X)
		if !ok {
			return "", false
		}
		return base + "." + x.Sel.Name, true
	case *ast.ParenExpr:
		return exprPath(x.X)
	}
	return "", false
}

func copyHeld(held map[string]heldRef) map[string]heldRef {
	out := make(map[string]heldRef, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

func hasCommClause(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
			return true
		}
	}
	return false
}

// calleeFunc resolves a call's static callee, or nil for dynamic
// calls (function values, interface conversions, built-ins).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// namedRecvName returns the receiver's named-type name ("Mutex"),
// dereferencing a pointer receiver.
func namedRecvName(sig *types.Signature) string {
	if n, ok := derefType(sig.Recv().Type()).(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

func recvTypeString(sig *types.Signature) string {
	return types.TypeString(derefType(sig.Recv().Type()),
		func(p *types.Package) string { return p.Name() })
}

func isSyncCondRecv(sig *types.Signature) bool {
	n, ok := derefType(sig.Recv().Type()).(*types.Named)
	return ok && n.Obj().Name() == "Cond" && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "sync"
}
