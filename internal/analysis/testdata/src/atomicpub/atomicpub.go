// Package atomicpub is the atomicpub analyzer fixture: publication
// violations the single-package atomicfield check could not see —
// plain reads one call away from the atomic writes, escaping
// addresses — plus the transporter pattern that must stay sanctioned.
package atomicpub

import "sync/atomic"

type stats struct {
	count int64
	peak  int64
}

func (s *stats) bump() {
	atomic.AddInt64(&s.count, 1)
}

// readCount is the seeded violation behind one level of call
// indirection: the atomic write is in bump, the plain read here; only
// a program-wide view connects them.
func (s *stats) readCount() int64 {
	return s.count // want "plain access to count"
}

// escape leaks the field's address outside any sync/atomic operand: a
// plain access waiting to happen at every dereference of the result.
func (s *stats) escape() *int64 {
	return &s.count // want "address of count escapes"
}

// transport is an atomic transporter: every use of p is a sync/atomic
// operand, so passing &s.peak extends the atomic contract instead of
// breaking it.
func transport(p *int64, delta int64) {
	for {
		cur := atomic.LoadInt64(p)
		if delta <= cur || atomic.CompareAndSwapInt64(p, cur, delta) {
			return
		}
	}
}

// forward forwards to a transporter; the fixpoint must classify it as
// one too.
func forward(p *int64, delta int64) {
	transport(p, delta)
}

func (s *stats) bumpPeakDirect(v int64)  { transport(&s.peak, v) }
func (s *stats) bumpPeakForward(v int64) { forward(&s.peak, v) }

// readPeak is still a violation: transporter writes are atomic
// accesses, so the plain read mixes modes exactly like readCount.
func (s *stats) readPeak() int64 {
	return s.peak // want "plain access to peak"
}
