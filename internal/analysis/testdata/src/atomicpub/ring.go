// ring.go covers the MPSC ring-publication pattern from the lock-free
// submit path, written in the raw sync/atomic idiom the analyzer
// polices (the production ring uses typed atomics, which are exempt by
// construction). The contract under test: a producer-side cursor and
// per-slot sequence numbers are atomic everywhere — CAS reservation,
// release store on publish, acquire load on pop — while the
// single-consumer cursor is deliberately plain and must stay
// unflagged. Two seeded violations mirror the bugs the check exists
// for: a racy plain read of the producer cursor, and a sequence
// address escaping to code the analyzer can no longer see.
package atomicpub

import "sync/atomic"

// mpscSlot keeps seq first: 64-bit sync/atomic operands must sit at
// 8-aligned offsets under 32-bit layout or the misalignment check
// fires too.
type mpscSlot struct {
	seq uint64
	val int
}

// mpsc orders its raw 64-bit atomic cursor first for the same
// alignment reason. tail is the single consumer's private cursor —
// never touched atomically, so the analyzer must never track it.
type mpsc struct {
	head  uint64
	tail  uint64
	mask  uint64
	slots []mpscSlot
}

func newMpsc(size int) *mpsc {
	r := &mpsc{slots: make([]mpscSlot, size), mask: uint64(size - 1)}
	for i := range r.slots {
		atomic.StoreUint64(&r.slots[i].seq, uint64(i))
	}
	return r
}

// publish is the producer side: CAS-reserve a position on head, write
// the message plainly, then release it with the slot's seq store.
func (r *mpsc) publish(v int) bool {
	for {
		pos := atomic.LoadUint64(&r.head)
		s := &r.slots[pos&r.mask]
		switch diff := int64(atomic.LoadUint64(&s.seq)) - int64(pos); {
		case diff == 0:
			if atomic.CompareAndSwapUint64(&r.head, pos, pos+1) {
				s.val = v
				atomic.StoreUint64(&s.seq, pos+1)
				return true
			}
		case diff < 0:
			return false
		}
	}
}

// pop is the single consumer: the plain tail cursor is sound (one
// goroutine), but the seq handshake with producers stays atomic.
func (r *mpsc) pop() (int, bool) {
	pos := r.tail
	s := &r.slots[pos&r.mask]
	if int64(atomic.LoadUint64(&s.seq))-int64(pos+1) < 0 {
		return 0, false
	}
	v := s.val
	atomic.StoreUint64(&s.seq, pos+uint64(len(r.slots)))
	r.tail = pos + 1
	return v, true
}

// depth is the seeded cursor violation: head is published by CAS in
// publish, so this racy plain read mixes access modes.
func (r *mpsc) depth() uint64 {
	return r.head - r.tail // want "plain access to head"
}

// peekSeq is the seeded escape: once a slot's sequence address leaves
// the ring, every dereference of it is an unordered read of the
// publication point.
func (r *mpsc) peekSeq() *uint64 {
	return &r.slots[0].seq // want "address of seq escapes"
}
