package lockemit

// Fixtures mirroring internal/rt's span tracing discipline: a task's
// span is stamped under the shard lock (plain field writes — fine),
// but emission hands the span to the tracer's flight recorder and
// histograms, so Tracer.Emit must only ever run outside dispatcher
// locks. finish-style emission after unlock must stay clean; emitting
// from inside a critical section must be flagged.

import (
	"sync"
	"time"
)

type span struct {
	submit time.Time
	draw   time.Time
}

type tracer struct{}

func (tracer) Emit(sp *span, end time.Time, outcome string) {}

type traced struct {
	mu   sync.Mutex
	tr   tracer
	span *span
}

// stampDisciplined is the dispatcher shape: stamps are plain field
// writes inside the critical section, and the span leaves through
// Emit only after the lock is released.
func (t *traced) stampDisciplined(now time.Time) {
	t.mu.Lock()
	sp := t.span
	sp.draw = now // fine: stamping is a field write, not emission
	t.span = nil
	t.mu.Unlock()

	t.tr.Emit(sp, now, "complete") // fine: after unlock
}

// emitUnderLock collapses the discipline: the span is emitted while
// the mutex is still held.
func (t *traced) emitUnderLock(now time.Time) {
	t.mu.Lock()
	sp := t.span
	t.tr.Emit(sp, now, "complete") // want "span emission"
	t.mu.Unlock()
}

// emitUnderDefer holds the lock for the whole function body, so the
// emission is still inside the critical section.
func (t *traced) emitUnderDefer(now time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.tr.Emit(t.span, now, "cancel") // want "span emission"
}
