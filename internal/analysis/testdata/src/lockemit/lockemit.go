// Package lockemit is the lockemit analyzer fixture: each line
// carrying a want comment must be flagged; everything else must not.
package lockemit

import (
	"sync"
	"time"
)

type event struct{ kind int }

type observer interface {
	Observe(event)
}

type dispatcher struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	cond *sync.Cond
	obs  observer
	ch   chan int
	wg   sync.WaitGroup
}

// emitUnderLock is the canonical violation: emission inside the
// critical section.
func (d *dispatcher) emitUnderLock() {
	d.mu.Lock()
	d.obs.Observe(event{1}) // want "observer event emission"
	d.mu.Unlock()
	d.obs.Observe(event{2}) // fine: after the unlock
}

// emitUnderDeferredUnlock: defer Unlock holds the lock to the end.
func (d *dispatcher) emitUnderDeferredUnlock() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.obs.Observe(event{3}) // want "observer event emission"
}

// channelOpsUnderLock: sends, receives, and selects block unboundedly
// while every other lock user waits.
func (d *dispatcher) channelOpsUnderLock() {
	d.mu.Lock()
	d.ch <- 1 // want "channel send"
	<-d.ch    // want "channel receive"
	select {  // want "select over channels"
	case v := <-d.ch:
		_ = v
	default:
	}
	d.mu.Unlock()
	d.ch <- 2 // fine: after the unlock
}

// blockingCallsUnderLock: time.Sleep and WaitGroup.Wait park the
// goroutine with the lock held.
func (d *dispatcher) blockingCallsUnderLock() {
	d.rw.Lock()
	time.Sleep(time.Millisecond) // want "blocking call time.Sleep"
	d.wg.Wait()                  // want "blocking call sync.WaitGroup.Wait"
	d.rw.Unlock()
}

// condWaitIsFine: sync.Cond.Wait releases the mutex internally — the
// one legitimate in-lock wait.
func (d *dispatcher) condWaitIsFine() {
	d.mu.Lock()
	d.cond.Wait()
	d.mu.Unlock()
}

// earlyUnlockBranch: the unlock inside the branch must not leak
// "unlocked" into the fallthrough path.
func (d *dispatcher) earlyUnlockBranch(done bool) {
	d.mu.Lock()
	if done {
		d.mu.Unlock()
		d.obs.Observe(event{4}) // fine: this branch unlocked first
		return
	}
	d.obs.Observe(event{5}) // want "observer event emission"
	d.mu.Unlock()
}

// goroutineStartsUnlocked: a goroutine launched under the lock does
// not itself hold it.
func (d *dispatcher) goroutineStartsUnlocked() {
	d.mu.Lock()
	go func() {
		d.obs.Observe(event{6}) // fine: new goroutine, lock not held
	}()
	d.mu.Unlock()
}

// immediatelyInvokedLiteralRunsLocked: an IIFE runs on this goroutine,
// under the lock.
func (d *dispatcher) immediatelyInvokedLiteralRunsLocked() {
	d.mu.Lock()
	func() {
		d.obs.Observe(event{7}) // want "observer event emission"
	}()
	d.mu.Unlock()
}

// rlockCountsToo: read locks also serialize against writers.
func (d *dispatcher) rlockCountsToo() {
	d.rw.RLock()
	d.obs.Observe(event{8}) // want "observer event emission"
	d.rw.RUnlock()
}

// workerLoop mirrors the rt worker shape: lock, pop, unlock, emit —
// the correct pattern, which must stay clean.
func (d *dispatcher) workerLoop() {
	for {
		d.mu.Lock()
		for len(d.ch) == 0 {
			d.cond.Wait()
		}
		d.mu.Unlock()
		d.obs.Observe(event{9}) // fine: emitted outside the lock
		return
	}
}

type shardFix struct {
	mu  sync.Mutex
	obs observer
}

type clientFix struct {
	sh  *shardFix
	obs observer
}

// lockShard mirrors rt.Client.lockShard: it resolves the client's
// shard and returns with that shard's mutex held.
func (c *clientFix) lockShard() *shardFix {
	sh := c.sh
	sh.mu.Lock()
	return sh
}

// shardHelperAcquires: sh := c.lockShard() opens a critical section on
// sh.mu even though no literal sh.mu.Lock() appears.
func (c *clientFix) shardHelperAcquires() {
	sh := c.lockShard()
	c.obs.Observe(event{10}) // want "observer event emission"
	sh.mu.Unlock()
	c.obs.Observe(event{11}) // fine: shard lock released
}

// shardReacquireLoop mirrors the submit backpressure wait: unlock,
// block outside the lock, reacquire through the helper — the blocking
// receive must stay clean and the reacquired region must be checked.
func (c *clientFix) shardReacquireLoop(ch chan int) {
	sh := c.lockShard()
	for i := 0; i < 2; i++ {
		sh.mu.Unlock()
		<-ch // fine: shard lock released across the wait
		sh = c.lockShard()
		c.obs.Observe(event{12}) // want "observer event emission"
	}
	sh.mu.Unlock()
}

// shardSettleShape is the correct runDrawn pattern: bookkeeping under
// the shard lock, emission after release.
func (c *clientFix) shardSettleShape() {
	sh := c.lockShard()
	sh.mu.Unlock()
	c.obs.Observe(event{13}) // fine: emitted outside the shard lock
}

// shedCollectShape mirrors rt.Client.Shed: victims are unlinked from
// the queue under the shard lock, but their shed events are emitted
// only after release.
func (c *clientFix) shedCollectShape(n int) {
	sh := c.lockShard()
	victims := make([]event, 0, n)
	for i := 0; i < n; i++ {
		victims = append(victims, event{14})
	}
	sh.mu.Unlock()
	for _, v := range victims {
		c.obs.Observe(v) // fine: emitted after the shard lock is gone
	}
}

// shedEmitUnderLock is the bug the shape above avoids: per-victim
// emission from inside the eviction loop, still under the shard lock.
func (c *clientFix) shedEmitUnderLock(n int) {
	sh := c.lockShard()
	for i := 0; i < n; i++ {
		c.obs.Observe(event{15}) // want "observer event emission"
	}
	sh.mu.Unlock()
}
