package lockemit

// Fixtures mirroring internal/rt/resource's ledger discipline: victim
// selection for memory reclamation snapshots candidates under the
// ledger mutex, draws the inverse lottery unlocked, and re-validates
// the revocation under the mutex; reclaim/throttle hooks and waiter
// wakeups fire outside the lock. The correct shapes below must stay
// clean, and each way of collapsing the discipline must be flagged.

import "sync"

type victim struct {
	resident int64
	hook     observer
}

type ledgerFix struct {
	mu      sync.Mutex
	free    int64
	tenants []*victim
	grants  chan int64
	hook    observer
}

// reclaimDisciplined is the resource.Ledger shape: candidates are
// copied under the lock, the draw happens unlocked, the revocation is
// re-validated under the lock, and the hook fires after release.
func (l *ledgerFix) reclaimDisciplined(need int64) {
	l.mu.Lock()
	candidates := make([]*victim, len(l.tenants))
	copy(candidates, l.tenants)
	l.mu.Unlock()

	chosen := drawVictim(candidates) // fine: inverse lottery outside the lock

	l.mu.Lock()
	if chosen.resident >= need { // re-validate: residency may have moved
		chosen.resident -= need
		l.free += need
	}
	l.mu.Unlock()
	chosen.hook.Observe(event{20}) // fine: OnReclaim fires after release
}

// reclaimHookUnderLock collapses the discipline: the reclaim hook
// fires inside the critical section, so an unbounded hook stalls
// every acquire and release on the ledger.
func (l *ledgerFix) reclaimHookUnderLock(need int64) {
	l.mu.Lock()
	for _, v := range l.tenants {
		if v.resident >= need {
			v.resident -= need
			l.free += need
			v.hook.Observe(event{21}) // want "observer event emission"
			break
		}
	}
	l.mu.Unlock()
}

// grantWakeupUnderLock wakes an I/O waiter by channel send while the
// ledger mutex is held: if the waiter's receive is not ready, every
// ledger user blocks behind this send.
func (l *ledgerFix) grantWakeupUnderLock(tokens int64) {
	l.mu.Lock()
	l.free -= tokens
	l.grants <- tokens // want "channel send"
	l.mu.Unlock()
	l.grants <- tokens // fine: wakeup after release
}

// pumpDisciplined is the token-bucket pump shape: grants are decided
// under the lock, collected, and delivered after release.
func (l *ledgerFix) pumpDisciplined() {
	var granted []int64
	l.mu.Lock()
	for l.free > 0 {
		l.free--
		granted = append(granted, 1)
	}
	l.mu.Unlock()
	for _, g := range granted {
		l.grants <- g // fine: deliveries outside the lock
	}
}

// snapshotEmitsAfterCopy is the Snapshot shape: the copy happens under
// the lock, observation of the copy happens outside.
func (l *ledgerFix) snapshotEmitsAfterCopy() {
	l.mu.Lock()
	n := len(l.tenants)
	l.mu.Unlock()
	if n > 0 {
		l.hook.Observe(event{22}) // fine: lock released before emission
	}
}

// drawVictim stands in for the inverse-lottery draw; the analyzer only
// cares that it is called outside any critical section above.
func drawVictim(cands []*victim) *victim {
	best := cands[0]
	for _, v := range cands {
		if v.resident > best.resident {
			best = v
		}
	}
	return best
}
