// Package detsource is the detsource analyzer fixture.
package detsource

import (
	"math/rand"
	"sort"
	"time"
)

// wallClock reads real time: forbidden in deterministic packages.
func wallClock() int64 {
	now := time.Now() // want "time.Now in a deterministic package"
	return now.UnixNano()
}

// waived shows a justified directive suppressing the finding.
func waived() time.Time {
	return time.Now() //lint:ignore detsource fixture exercises the waiver path
}

// bareDirectiveWaivesNothing: a directive without a reason is
// malformed and must not suppress the finding.
func bareDirectiveWaivesNothing() time.Time {
	//lint:ignore detsource
	return time.Now() // want "time.Now in a deterministic package"
}

// globalRand draws from the shared, racily-seeded source.
func globalRand() int {
	return rand.Intn(6) // want "global math/rand.Intn"
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { // want "global math/rand.Shuffle"
		xs[i], xs[j] = xs[j], xs[i]
	})
}

// seededRand threads an explicit source: reproducible, allowed.
func seededRand(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(6)
}

// mapOrder iterates a map directly: order is randomized per run.
func mapOrder(m map[string]int) int {
	total := 0
	for _, v := range m { // want "map iteration order is nondeterministic"
		total += v
	}
	return total
}

// sortedOrder iterates sorted keys: deterministic, allowed.
func sortedOrder(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // want "map iteration order is nondeterministic"
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sliceOrder ranges a slice: deterministic, allowed.
func sliceOrder(xs []int) int {
	total := 0
	for _, v := range xs {
		total += v
	}
	return total
}

// virtualTime models the correct pattern: a duration computed from
// simulated state, no wall clock involved.
func virtualTime(ticks int64) time.Duration {
	return time.Duration(ticks) * time.Millisecond
}
