// Package ignores exercises //lint:ignore handling: per-analyzer
// scoped suppression, unknown analyzer names, missing reasons, and
// stale waivers. The directive-audit expectations live in
// TestIgnoreDirectives, not in want comments, because the findings
// here come from CheckDirectives rather than a single analyzer.
package ignores

import (
	"sync"
	"sync/atomic"
	"time"
)

type box struct {
	hot int64 // first for 64-bit alignment on 32-bit targets
	mu  sync.Mutex
	n   int
}

// relock's double acquisition is waived for exactly the analyzer that
// would report it: suppressed, and the directive counts as used.
func (b *box) relock() {
	b.mu.Lock()
	//lint:ignore lockorder fixture: deliberate double acquisition
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
	b.mu.Unlock()
}

// wrongScope names lockorder, but the finding on the next line belongs
// to blockinglock: suppression must not leak across analyzers, so the
// sleep is still reported and the directive goes stale.
func (b *box) wrongScope() {
	b.mu.Lock()
	//lint:ignore lockorder fixture: names the wrong analyzer
	time.Sleep(time.Millisecond)
	b.mu.Unlock()
}

// now waives detsource with a written reason: used, silent.
func now() int64 {
	//lint:ignore detsource fixture: wall clock on purpose
	return time.Now().UnixNano()
}

// unknownName waives an analyzer that does not exist.
func unknownName() {
	//lint:ignore nosuchcheck fixture: no analyzer by this name
	_ = 0
}

// malformed gives no reason, so the directive waives nothing: the
// sleep under lock is still reported, plus the malformed finding.
func (b *box) malformed() {
	b.mu.Lock()
	//lint:ignore blockinglock
	time.Sleep(time.Millisecond)
	b.mu.Unlock()
}

// stale covers a line that produces no finding.
func (b *box) stale() {
	//lint:ignore atomicpub fixture: suppresses nothing
	atomic.AddInt64(&b.hot, 1)
}
