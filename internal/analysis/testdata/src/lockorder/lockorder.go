// Package lockorder is the lockorder analyzer fixture: a seeded
// two-mutex ordering cycle (one leg direct, one leg through a helper,
// so the diagnostic carries a real witness path) plus double
// acquisition, and clean patterns that must stay silent.
package lockorder

import "sync"

type registry struct {
	amu sync.Mutex
	bmu sync.Mutex
	n   int
}

// withB acquires bmu — the helper leg of the seeded cycle, so the
// cycle witness must spell lockAB → withB.
func (r *registry) withB() {
	r.bmu.Lock()
	r.n++
	r.bmu.Unlock()
}

// lockAB holds amu and reaches bmu through withB: the a→b leg.
func (r *registry) lockAB() {
	r.amu.Lock()
	defer r.amu.Unlock()
	r.withB() // want "lock-order cycle lockorder.registry.amu → lockorder.registry.bmu"
}

// lockBA holds bmu and takes amu directly: the b→a leg. The cycle is
// reported once, at the first leg above.
func (r *registry) lockBA() {
	r.bmu.Lock()
	defer r.bmu.Unlock()
	r.amu.Lock()
	r.n++
	r.amu.Unlock()
}

// consistentNesting always takes amu before bmu from both entry
// points: ordered, silent.
type ordered struct {
	outer sync.Mutex
	inner sync.Mutex
	n     int
}

func (o *ordered) first() {
	o.outer.Lock()
	defer o.outer.Unlock()
	o.innerOp()
}

func (o *ordered) second() {
	o.outer.Lock()
	o.inner.Lock()
	o.n++
	o.inner.Unlock()
	o.outer.Unlock()
}

func (o *ordered) innerOp() {
	o.inner.Lock()
	o.n++
	o.inner.Unlock()
}

// relock is the non-reentrancy violation: the same mutex expression
// locked twice in one frame.
func (r *registry) relock() {
	r.amu.Lock()
	r.amu.Lock() // want "locked twice"
	r.n++
	r.amu.Unlock()
	r.amu.Unlock()
}

// relockViaCall deadlocks the same way one call deep: amu is held and
// the callee takes it again.
func (r *registry) lockA() {
	r.amu.Lock()
	r.n++
	r.amu.Unlock()
}

func (r *registry) relockViaCall() {
	r.amu.Lock()
	defer r.amu.Unlock()
	r.lockA() // want "acquired while already held"
}

// sequential is clean: the locks are never nested, so no edge exists
// in either direction.
func (r *registry) sequential() {
	r.amu.Lock()
	r.n++
	r.amu.Unlock()
	r.bmu.Lock()
	r.n++
	r.bmu.Unlock()
}
