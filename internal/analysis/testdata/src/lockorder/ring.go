// ring.go covers the locking half of the ring-drain protocol: the
// single consumer drains under the shard mutex and may use atomics
// freely there (publication atomics are not acquisitions — the
// analyzer must stay silent), but settling a drained task while still
// holding the shard lock recreates the classic shard/client cycle the
// production code avoids by finishing off-lock.
package lockorder

import (
	"sync"
	"sync/atomic"
)

type ringShard struct {
	mu  sync.Mutex
	seq atomic.Uint64
	n   int
}

type ringClient struct {
	mu    sync.Mutex
	depth int
}

// drainLocked is the clean pattern: the consumer holds the shard
// mutex and handshakes with producers through the sequence atomic
// alone. No lock edge exists here.
func (s *ringShard) drainLocked() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.seq.Load() > uint64(s.n) {
		s.n++
	}
}

// drainAndSettle is the shard→client leg of the seeded cycle: it
// settles the client's ledger while the shard mutex is still held,
// instead of collecting actions and finishing after unlock.
func (s *ringShard) drainAndSettle(c *ringClient) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
	c.mu.Lock()
	c.depth--
	c.mu.Unlock()
}

// submitFull is the client→shard leg: a full-ring fallback that takes
// the shard mutex while the client's own lock is held.
func (c *ringClient) submitFull(s *ringShard) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.depth++
	s.mu.Lock() // want "lock-order cycle lockorder.ringClient.mu → lockorder.ringShard.mu"
	s.n++
	s.mu.Unlock()
}
