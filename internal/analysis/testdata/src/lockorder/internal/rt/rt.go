// Package rt mimics the runtime's lock classes under a fixture path:
// the package path ends in "internal/rt", so shard.mu and
// Dispatcher.graphMu here resolve to the same declared ranks the real
// runtime's locks do — this fixture proves the global order table is
// machine-enforced, not just documented.
package rt

import "sync"

type shard struct {
	mu   sync.Mutex
	work int
}

type Dispatcher struct {
	graphMu sync.RWMutex
	shards  []*shard
	weight  int
}

// reweigh follows the declared order — a shard's mu may be held when
// taking graphMu: silent.
func (d *Dispatcher) reweigh(sh *shard) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	d.graphMu.Lock()
	d.weight++
	d.graphMu.Unlock()
}

// invert violates it — graphMu held while acquiring a shard mu is the
// reverse of the declared rt order and deadlocks against reweigh.
func (d *Dispatcher) invert(sh *shard) {
	d.graphMu.Lock()
	defer d.graphMu.Unlock()
	sh.mu.Lock() // want "against the declared lock order"
	sh.work++
	sh.mu.Unlock()
}

// invertViaHelper is the same inversion one call deep: the diagnostic
// must carry the witness path through lockFirst.
func (d *Dispatcher) lockFirst() {
	sh := d.shards[0]
	sh.mu.Lock()
	sh.work++
	sh.mu.Unlock()
}

func (d *Dispatcher) invertViaHelper() {
	d.graphMu.Lock()
	defer d.graphMu.Unlock()
	d.lockFirst() // want "against the declared lock order"
}

// rebalance holds two shard mus at once: shard.mu is declared
// multi-instance (ascending-id discipline by construction), so this is
// silent.
func (d *Dispatcher) rebalance(a, b *shard) {
	a.mu.Lock()
	b.mu.Lock()
	a.work, b.work = b.work, a.work
	b.mu.Unlock()
	a.mu.Unlock()
}
