// Package blockinglock is the inter-procedural half of the
// blockinglock fixture suite (the retired lockemit analyzer's fixture
// pins the intra-procedural behavior): blocking operations reached
// through calls, function values, and interface dispatch while a
// mutex is held.
package blockinglock

import (
	"sync"
	"time"
)

type engine struct {
	mu   sync.Mutex
	done chan struct{}
	n    int
}

// emitDone blocks directly: channel send. Unlocked callers are fine.
func (e *engine) emitDone() {
	e.done <- struct{}{}
}

// nap blocks two calls deep from holdAndRest.
func nap() {
	time.Sleep(time.Millisecond)
}

func restCall() {
	nap()
}

func (e *engine) holdAndSend() {
	e.mu.Lock()
	e.emitDone() // want "channel send"
	e.mu.Unlock()
}

func (e *engine) holdAndRest() {
	e.mu.Lock()
	defer e.mu.Unlock()
	restCall() // want "blocking call time.Sleep"
}

func (e *engine) sendUnlocked() {
	e.emitDone()
	e.mu.Lock()
	e.n++
	e.mu.Unlock()
}

// hooks carries a function value; wire stores a blocking one, so a
// locked call through the field must be flagged (flow-insensitive:
// any function ever stored counts).
type hooks struct {
	fn func()
}

func wire(h *hooks) {
	h.fn = nap
}

func (e *engine) holdAndHook(h *hooks) {
	e.mu.Lock()
	h.fn() // want "blocking call time.Sleep"
	e.mu.Unlock()
}

// Sink is a first-party interface: CHA expands s.Flush to every
// implementation in the program, and slowSink's blocks.
type Sink interface {
	Flush()
}

type slowSink struct{}

func (slowSink) Flush() {
	time.Sleep(time.Millisecond)
}

type fastSink struct{ n int }

func (s *fastSink) Flush() { s.n++ }

func (e *engine) holdAndFlush(s Sink) {
	e.mu.Lock()
	s.Flush() // want "blocking call time.Sleep"
	e.mu.Unlock()
}

// helper chains that never block stay silent under lock.
func (e *engine) calm() {
	e.n++
}

func (e *engine) holdAndCalm() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.calm()
}
