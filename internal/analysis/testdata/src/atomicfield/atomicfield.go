// Package atomicfield is the atomicfield analyzer fixture.
package atomicfield

import (
	"sync"
	"sync/atomic"
)

type counters struct {
	// mixed is the violation: incremented atomically, read plainly.
	mixed uint64
	// atomicOnly is correct: every access goes through sync/atomic.
	atomicOnly uint64
	// guarded is correct: only ever touched under mu, never atomically.
	mu      sync.Mutex
	guarded uint64
	// typed is correct by construction: atomic.Uint64 forbids plain use.
	typed atomic.Uint64
}

func (c *counters) inc() {
	atomic.AddUint64(&c.mixed, 1)
	atomic.AddUint64(&c.atomicOnly, 1)
	c.typed.Add(1)
}

func (c *counters) read() uint64 {
	total := c.mixed // want "plain access to mixed"
	total += atomic.LoadUint64(&c.atomicOnly)
	c.mu.Lock()
	total += c.guarded
	c.mu.Unlock()
	return total + c.typed.Load()
}

func (c *counters) write() {
	c.mixed = 0 // want "plain access to mixed"
	c.mu.Lock()
	c.guarded = 0
	c.mu.Unlock()
}

// misaligned triggers the 32-bit alignment check: on GOARCH=386 the
// uint64 field sits at offset 4 and a 64-bit atomic on it faults.
type misaligned struct {
	flag uint32
	hits uint64 // want "not 8-byte aligned"
}

func (m *misaligned) bump() {
	atomic.AddUint64(&m.hits, 1)
}

// aligned is the same shape with the 64-bit field first: clean.
type aligned struct {
	hits uint64
	flag uint32
}

func (a *aligned) bump() {
	atomic.AddUint64(&a.hits, 1)
}

// pkgCounter is a package-level variable mixed-mode: also a violation.
var pkgCounter int64

func bumpPkg() {
	atomic.AddInt64(&pkgCounter, 1)
}

func readPkg() int64 {
	return pkgCounter // want "plain access to pkgCounter"
}

// localIsFine: a local int64 used both ways is visible at a glance and
// not part of the shared-state contract.
func localIsFine() int64 {
	var n int64
	atomic.AddInt64(&n, 1)
	return n
}
