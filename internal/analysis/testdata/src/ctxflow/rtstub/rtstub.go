// Package rtstub mirrors the rt API shape for the ctxflow fixture:
// context-free methods with Ctx-suffixed variants.
package rtstub

import "context"

// Client mimics rt.Client.
type Client struct{}

// Submit mimics rt.Client.Submit.
func (c *Client) Submit(fn func()) (*Task, error) { return &Task{}, nil }

// SubmitCtx mimics rt.Client.SubmitCtx.
func (c *Client) SubmitCtx(ctx context.Context, fn func()) (*Task, error) { return &Task{}, nil }

// Flush has no Ctx variant; ctxflow must never flag it.
func (c *Client) Flush() {}

// Task mimics rt.Task.
type Task struct{}

// Wait mimics rt.Task.Wait.
func (t *Task) Wait() error { return nil }

// WaitCtx mimics rt.Task.WaitCtx.
func (t *Task) WaitCtx(ctx context.Context) error { return nil }
