// Package ctxflow is the ctxflow analyzer fixture. The rtstub
// subpackage mimics the rt API shape: Submit/SubmitCtx on a client,
// Wait/WaitCtx on a task.
package ctxflow

import (
	"context"

	"repro/internal/analysis/testdata/src/ctxflow/rtstub"
)

// handler has a context and drops it: both calls are violations.
func handler(ctx context.Context, c *rtstub.Client) error {
	task, err := c.Submit(func() {}) // want "drops in-scope context"
	if err != nil {
		return err
	}
	return task.Wait() // want "drops in-scope context"
}

// handlerCtx is the corrected form: nothing to flag.
func handlerCtx(ctx context.Context, c *rtstub.Client) error {
	task, err := c.SubmitCtx(ctx, func() {})
	if err != nil {
		return err
	}
	return task.WaitCtx(ctx)
}

// noContext has no context in scope: the context-free calls are the
// only option and stay clean.
func noContext(c *rtstub.Client) error {
	task, err := c.Submit(func() {})
	if err != nil {
		return err
	}
	return task.Wait()
}

// declaredAfter: the context only comes into existence after the call,
// so the call cannot have used it.
func declaredAfter(c *rtstub.Client) context.Context {
	_, _ = c.Submit(func() {})
	ctx := context.Background()
	return ctx
}

// capturedInClosure: a closure sees the enclosing function's context
// and must still use it.
func capturedInClosure(ctx context.Context, c *rtstub.Client) func() error {
	return func() error {
		task, err := c.Submit(func() {}) // want "drops in-scope context"
		if err != nil {
			return err
		}
		return task.WaitCtx(ctx)
	}
}

// localContext: a context made locally (the lotteryd main pattern)
// counts as in scope.
func localContext(c *rtstub.Client) error {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	task, err := c.SubmitCtx(ctx, func() {})
	if err != nil {
		return err
	}
	return task.Wait() // want "drops in-scope context"
}

// noCtxVariant: methods without a Ctx sibling are never flagged even
// with a context in scope.
func noCtxVariant(ctx context.Context, c *rtstub.Client) {
	c.Flush()
}
