package analysis

import (
	"go/ast"
	"go/types"
)

// CtxFlowAnalyzer flags call sites in the binaries and examples that
// drop an available context.Context: calling a context-free method
// (Submit, Wait, Close, ...) when (a) the receiver also offers the
// Ctx-suffixed variant of the same method and (b) a context.Context
// variable is in scope at the call site and declared before it.
//
// Dropping the context severs cancellation flow end to end — a request
// handler whose context dies keeps its task queued (PR 2's lifecycle
// machinery exists precisely so that cancellation propagates), so in
// cmd/ and examples/ the Ctx variant is mandatory whenever a context
// is available. Library-internal code is exempt: the context-free
// variants are themselves implemented there.
var CtxFlowAnalyzer = &Analyzer{
	Name: "ctxflow",
	Doc:  "flags Submit/Wait-style calls that drop an in-scope context.Context when a Ctx variant exists",
	AppliesTo: func(pkgPath string) bool {
		return hasPathComponent(pkgPath, "cmd") || hasPathComponent(pkgPath, "examples")
	},
	SkipTests: true,
	Run:       runCtxFlow,
}

func runCtxFlow(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if fn == nil {
				return true
			}
			sig, _ := fn.Type().(*types.Signature)
			if sig == nil || sig.Recv() == nil {
				return true
			}
			if !hasCtxVariant(sig.Recv().Type(), fn.Name()) {
				return true
			}
			if takesContext(sig) {
				return true // already the context-aware variant
			}
			if ctx := inScopeContext(pass, call); ctx != "" {
				pass.Reportf(call.Pos(),
					"%s.%s drops in-scope context %q; use %s%s so cancellation propagates",
					recvTypeString(sig), fn.Name(), ctx, fn.Name(), "Ctx")
			}
			return true
		})
	}
	return nil
}

// hasCtxVariant reports whether recv's method set contains
// name+"Ctx" taking a context.Context first.
func hasCtxVariant(recv types.Type, name string) bool {
	for _, t := range []types.Type{recv, types.NewPointer(recv)} {
		ms := types.NewMethodSet(t)
		for i := 0; i < ms.Len(); i++ {
			m := ms.At(i).Obj()
			if m.Name() != name+"Ctx" {
				continue
			}
			if sig, ok := m.Type().(*types.Signature); ok && takesContext(sig) {
				return true
			}
		}
	}
	return false
}

func takesContext(sig *types.Signature) bool {
	if sig.Params().Len() == 0 {
		return false
	}
	return isContextType(sig.Params().At(0).Type())
}

func isContextType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// inScopeContext returns the name of a context.Context variable
// visible at the call position and declared before it, or "".
func inScopeContext(pass *Pass, call *ast.CallExpr) string {
	scope := pass.Pkg.Scope().Innermost(call.Pos())
	for s := scope; s != nil && s != types.Universe; s = s.Parent() {
		for _, name := range s.Names() {
			obj := s.Lookup(name)
			v, ok := obj.(*types.Var)
			if !ok || !isContextType(v.Type()) {
				continue
			}
			if v.Pos() < call.Pos() {
				return name
			}
		}
	}
	return ""
}

// hasPathComponent reports whether path contains comp as a complete
// path element ("repro/cmd/lotteryd" has "cmd").
func hasPathComponent(path, comp string) bool {
	rest := path
	for rest != "" {
		var head string
		head, rest = splitPathElem(rest)
		if head == comp {
			return true
		}
	}
	return false
}

func splitPathElem(path string) (head, rest string) {
	for i := 0; i < len(path); i++ {
		if path[i] == '/' {
			return path[:i], path[i+1:]
		}
	}
	return path, ""
}
