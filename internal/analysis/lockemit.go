package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockEmitAnalyzer enforces the dispatcher's in-lock hygiene contract
// (DESIGN.md §5, "Observability"): while a sync.Mutex or sync.RWMutex
// is held, code must not
//
//   - emit observer events or trace spans (any method named Observe
//     or Emit — rt.Observer, metrics.Histogram, audit.Tracer, and
//     friends are all hot-path fan-out points whose implementations
//     the lock holder cannot bound),
//   - send on or receive from a channel, or select over channels, or
//   - make a known blocking call (time.Sleep, or any Wait method
//     other than sync.Cond.Wait, which releases the lock internally).
//
// The analysis is intra-procedural and syntactic about lock identity:
// a critical section opens at x.Lock()/x.RLock() and closes at the
// matching x.Unlock()/x.RUnlock() in the same statement list; defer
// x.Unlock() holds the lock for the rest of the function. One helper
// is modeled specially: `sh := c.lockShard()` (the rt dispatcher's
// shard-resolution loop) returns with sh.mu held, so the assignment
// opens a critical section on "sh.mu" that the usual sh.mu.Unlock()
// closes — per-shard regions get the same hygiene checks as regions
// opened by a literal Lock call. Nested
// blocks inherit a copy of the lock set, so an early-unlock-and-return
// branch does not leak "unlocked" into the fallthrough path. Function
// literals are only analyzed under the caller's lock set when they are
// invoked immediately; a goroutine body starts lock-free.
var LockEmitAnalyzer = &Analyzer{
	Name: "lockemit",
	Doc:  "flags observer/span emission, channel operations, and blocking calls made while a mutex is held",
	Run:  runLockEmit,
}

func runLockEmit(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w := &lockWalker{pass: pass}
			w.stmts(fd.Body.List, map[string]token.Pos{})
		}
	}
	return nil
}

type lockWalker struct {
	pass *Pass
}

// stmts walks one statement list with the current set of held locks,
// keyed by the printed lock expression ("d.mu") and valued by the
// Lock() position for the diagnostic.
func (w *lockWalker) stmts(list []ast.Stmt, held map[string]token.Pos) {
	for _, stmt := range list {
		w.stmt(stmt, held)
	}
}

func (w *lockWalker) stmt(stmt ast.Stmt, held map[string]token.Pos) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if name, op, ok := w.lockOp(s.X); ok {
			switch op {
			case lockAcquire:
				held[name] = s.Pos()
			case lockRelease:
				delete(held, name)
			}
			return
		}
		w.expr(s.X, held)
	case *ast.DeferStmt:
		// defer x.Unlock() keeps the lock held to the end of this
		// walk; other deferred calls run after the section and are not
		// scanned.
		if _, op, ok := w.lockOp(s.Call); ok && op == lockRelease {
			return
		}
	case *ast.SendStmt:
		w.flag(s.Pos(), held, "channel send")
		w.expr(s.Chan, held)
		w.expr(s.Value, held)
	case *ast.GoStmt:
		// The new goroutine does not hold the caller's locks; only the
		// argument expressions evaluate now.
		for _, arg := range s.Call.Args {
			w.expr(arg, held)
		}
	case *ast.AssignStmt:
		// sh := c.lockShard() (and the reacquire form sh = ...) returns
		// with the shard mutex held: open a section on "<lhs>.mu", the
		// same key its literal sh.mu.Unlock() will close.
		if name, ok := w.lockShardAssign(s); ok {
			w.expr(s.Rhs[0], held)
			held[name+".mu"] = s.Pos()
			return
		}
		for _, e := range s.Rhs {
			w.expr(e, held)
		}
		for _, e := range s.Lhs {
			w.expr(e, held)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e, held)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		w.expr(s.Cond, held)
		w.stmts(s.Body.List, copyLocks(held))
		if s.Else != nil {
			w.stmt(s.Else, copyLocks(held))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		if s.Cond != nil {
			w.expr(s.Cond, held)
		}
		w.stmts(s.Body.List, copyLocks(held))
	case *ast.RangeStmt:
		w.expr(s.X, held)
		w.stmts(s.Body.List, copyLocks(held))
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		if s.Tag != nil {
			w.expr(s.Tag, held)
		}
		for _, cc := range s.Body.List {
			if c, ok := cc.(*ast.CaseClause); ok {
				w.stmts(c.Body, copyLocks(held))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, cc := range s.Body.List {
			if c, ok := cc.(*ast.CaseClause); ok {
				w.stmts(c.Body, copyLocks(held))
			}
		}
	case *ast.SelectStmt:
		if len(held) > 0 && hasCommClause(s) {
			w.flag(s.Pos(), held, "select over channels")
		}
	case *ast.BlockStmt:
		w.stmts(s.List, copyLocks(held))
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, held)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v, held)
					}
				}
			}
		}
	}
}

// expr scans an expression subtree for violations under held locks.
// Function literal bodies are skipped unless immediately invoked.
func (w *lockWalker) expr(e ast.Expr, held map[string]token.Pos) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false // not running under this lock set (unless invoked; see CallExpr)
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				w.flag(x.Pos(), held, "channel receive")
			}
		case *ast.CallExpr:
			if lit, ok := x.Fun.(*ast.FuncLit); ok {
				// Immediately-invoked literal runs under the lock.
				w.stmts(lit.Body.List, copyLocks(held))
				for _, arg := range x.Args {
					w.expr(arg, held)
				}
				return false
			}
			w.call(x, held)
		}
		return true
	})
}

// call classifies a call expression and flags emission or blocking
// calls when locks are held.
func (w *lockWalker) call(call *ast.CallExpr, held map[string]token.Pos) {
	if len(held) == 0 {
		return
	}
	fn := calleeFunc(w.pass.TypesInfo, call)
	if fn == nil {
		return
	}
	sig, _ := fn.Type().(*types.Signature)
	switch {
	case fn.Name() == "Observe" && sig != nil && sig.Recv() != nil:
		w.flag(call.Pos(), held, "observer event emission (%s.Observe)", recvTypeString(sig))
	case fn.Name() == "Emit" && sig != nil && sig.Recv() != nil:
		w.flag(call.Pos(), held, "span emission (%s.Emit)", recvTypeString(sig))
	case fn.Name() == "Sleep" && fn.Pkg() != nil && fn.Pkg().Path() == "time":
		w.flag(call.Pos(), held, "blocking call time.Sleep")
	case fn.Name() == "Wait" && sig != nil && sig.Recv() != nil && !isSyncCondRecv(sig):
		w.flag(call.Pos(), held, "blocking call %s.Wait", recvTypeString(sig))
	}
}

func (w *lockWalker) flag(pos token.Pos, held map[string]token.Pos, format string, args ...any) {
	if len(held) == 0 {
		return
	}
	lock := ""
	for name := range held {
		if lock == "" || name < lock {
			lock = name
		}
	}
	msg := format
	w.pass.Reportf(pos, msg+" while %s is held", append(args, lock)...)
}

// lockShardAssign recognizes `sh := c.lockShard()` / `sh = c.lockShard()`
// — a single identifier assigned from a method call whose static
// callee is named lockShard. The helper's contract is that it returns
// its receiver's shard with that shard's mutex held.
func (w *lockWalker) lockShardAssign(s *ast.AssignStmt) (name string, ok bool) {
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return "", false
	}
	id, isIdent := s.Lhs[0].(*ast.Ident)
	if !isIdent || id.Name == "_" {
		return "", false
	}
	call, isCall := s.Rhs[0].(*ast.CallExpr)
	if !isCall {
		return "", false
	}
	fn := calleeFunc(w.pass.TypesInfo, call)
	if fn == nil || fn.Name() != "lockShard" {
		return "", false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return "", false
	}
	return id.Name, true
}

type lockOpKind int

const (
	lockAcquire lockOpKind = iota
	lockRelease
)

// lockOp recognizes x.Lock()/x.RLock()/x.Unlock()/x.RUnlock() calls on
// sync.Mutex or sync.RWMutex values with a nameable receiver path.
func (w *lockWalker) lockOp(e ast.Expr) (name string, op lockOpKind, ok bool) {
	call, isCall := e.(*ast.CallExpr)
	if !isCall {
		return "", 0, false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", 0, false
	}
	fn := calleeFunc(w.pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", 0, false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return "", 0, false
	}
	recv := namedRecvName(sig)
	if recv != "Mutex" && recv != "RWMutex" {
		return "", 0, false
	}
	path, ok := exprPath(sel.X)
	if !ok {
		return "", 0, false
	}
	switch fn.Name() {
	case "Lock", "RLock":
		return path, lockAcquire, true
	case "Unlock", "RUnlock":
		return path, lockRelease, true
	}
	return "", 0, false
}

// exprPath renders a selector/identifier chain ("d.mu", "c.d.mu") as a
// stable key; expressions with calls or indexing are not tracked.
func exprPath(e ast.Expr) (string, bool) {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name, true
	case *ast.SelectorExpr:
		base, ok := exprPath(x.X)
		if !ok {
			return "", false
		}
		return base + "." + x.Sel.Name, true
	case *ast.ParenExpr:
		return exprPath(x.X)
	}
	return "", false
}

func copyLocks(held map[string]token.Pos) map[string]token.Pos {
	out := make(map[string]token.Pos, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

func hasCommClause(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
			return true
		}
	}
	return false
}

// calleeFunc resolves a call's static callee, or nil for dynamic
// calls (function values, interface conversions, built-ins).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// namedRecvName returns the receiver's named-type name ("Mutex"),
// dereferencing a pointer receiver.
func namedRecvName(sig *types.Signature) string {
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

func recvTypeString(sig *types.Signature) string {
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}

func isSyncCondRecv(sig *types.Signature) bool {
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj().Name() == "Cond" && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "sync"
}
