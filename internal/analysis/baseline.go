package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// BaselineEntry is one accepted finding: a diagnostic the repository
// has decided to live with, together with the written justification
// the acceptance criteria demand. Line numbers are deliberately not
// part of the identity — refactors move findings around; a finding is
// the same finding as long as the analyzer, file, and message match.
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"` // relative to the baseline file's directory
	Message  string `json:"message"`
	Reason   string `json:"reason,omitempty"`
}

// Baseline is the checked-in set of accepted findings
// (lint_baseline.json at the repository root).
type Baseline struct {
	Findings []BaselineEntry `json:"findings"`
}

// LoadBaseline reads a baseline file. A missing file is an error —
// the driver treats "no baseline" as an empty one explicitly, so a
// typo'd -baseline path fails loudly instead of accepting everything.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	b := new(Baseline)
	if err := json.Unmarshal(data, b); err != nil {
		return nil, fmt.Errorf("baseline %s: %v", path, err)
	}
	return b, nil
}

// WriteBaseline writes the diagnostics as the new accepted set, file
// paths relative to dir. Reasons carry over from the previous baseline
// where the entry matches; new entries get a placeholder that the
// directive audit of a human review should replace.
func WriteBaseline(path, dir string, diags []Diagnostic, prev *Baseline) error {
	prevReason := make(map[string]string)
	if prev != nil {
		for _, e := range prev.Findings {
			prevReason[e.Analyzer+"\x00"+e.File+"\x00"+e.Message] = e.Reason
		}
	}
	b := &Baseline{Findings: []BaselineEntry{}}
	for _, d := range diags {
		e := BaselineEntry{
			Analyzer: d.Analyzer,
			File:     relTo(dir, d.Pos.Filename),
			Message:  d.Message,
		}
		e.Reason = prevReason[e.Analyzer+"\x00"+e.File+"\x00"+e.Message]
		if e.Reason == "" {
			e.Reason = "TODO: justify or fix"
		}
		b.Findings = append(b.Findings, e)
	}
	sort.Slice(b.Findings, func(i, j int) bool {
		a, c := b.Findings[i], b.Findings[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Analyzer != c.Analyzer {
			return a.Analyzer < c.Analyzer
		}
		return a.Message < c.Message
	})
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Diff splits a run's diagnostics against the baseline: findings not
// in the baseline are new (fail the build), baseline entries no
// diagnostic matched are stale (the debt was paid — the entry must be
// deleted so the baseline never shadows a regression).
func (b *Baseline) Diff(dir string, diags []Diagnostic) (news []Diagnostic, stale []BaselineEntry) {
	type key struct{ analyzer, file, message string }
	accepted := make(map[key]int) // entry index, for stale tracking
	matched := make([]bool, len(b.Findings))
	for i, e := range b.Findings {
		accepted[key{e.Analyzer, e.File, e.Message}] = i
	}
	for _, d := range diags {
		k := key{d.Analyzer, relTo(dir, d.Pos.Filename), d.Message}
		if i, ok := accepted[k]; ok {
			matched[i] = true
			continue
		}
		news = append(news, d)
	}
	for i, e := range b.Findings {
		if !matched[i] {
			stale = append(stale, e)
		}
	}
	return news, stale
}

// relTo renders path relative to dir when possible, for stable
// baseline entries across checkouts.
func relTo(dir, path string) string {
	if dir == "" {
		return path
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return path
	}
	rel, err := filepath.Rel(abs, path)
	if err != nil || rel == "" {
		return path
	}
	return filepath.ToSlash(rel)
}
