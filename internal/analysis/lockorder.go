package analysis

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// LockOrderAnalyzer enforces the runtime's global lock hierarchy
// (DESIGN.md §6). It computes, per function, which mutexes can be held
// when the function runs — following calls across packages through the
// Program's call graph — and reports:
//
//  1. acquisitions that violate the declared global order (LockOrder
//     below, the single authoritative statement of the hierarchy),
//     with the full inter-procedural witness path;
//  2. double acquisition of a non-reentrant mutex — the same lock
//     expression re-locked with itself held, or a call path that leads
//     back to a held lock class;
//  3. ordering cycles among locks outside the declared table (two
//     mutexes each acquired while the other is held, anywhere in the
//     program), the classic two-thread deadlock.
//
// Lock identity is the class "pkgpath.Type.field" (or "pkgpath.var"):
// every instance of a class shares a rank, so multi-instance classes
// that self-order (per-shard mutexes, locked in ascending shard-id
// order by construction — see rebalance.go) are declared MultiInstance
// and exempt from same-class reports.
var LockOrderAnalyzer = &Analyzer{
	Name: "lockorder",
	Doc:  "enforces the declared global mutex order and reports ordering cycles and double acquisition",
	Run:  runLockOrder,
}

// LockRank is one entry of the declared global lock order.
type LockRank struct {
	// Class is a suffix of the global lock class ("internal/rt.shard.mu"
	// matches "repro/internal/rt.shard.mu"); suffix matching keeps the
	// table stable across module renames and lets fixtures exercise it.
	Class string
	// MultiInstance marks classes with many self-ordered instances:
	// holding two locks of the class at once is legal (ascending-id
	// discipline is enforced by construction, not by this analyzer).
	MultiInstance bool
	// BlockExempt marks control-plane locks under which blocking
	// operations are accepted by design; blockinglock consults this.
	// Ordering is still enforced.
	BlockExempt bool
}

// LockOrder is the canonical global mutex hierarchy — THE single
// declaration the analyzers enforce and DESIGN.md §6 documents. A lock
// may only be acquired while locks of strictly lower index are held:
//
//	overload.Controller.mu → rt.shard.mu → rt.Dispatcher.graphMu →
//	resource.Ledger.mu → rt.EventRecorder.mu → audit.Tracer.mu
//
// Note the order within rt: a shard's mu may be held when taking
// graphMu, never the reverse (shard.go, dispatcher.go document the
// invariant; reweighLocked and the teardown paths rely on it). The
// overload controller's mu sits above every dispatcher lock — its tick
// calls into the dispatcher (SetFunding, Shed) with mu held. The
// ledger and the observability sinks are leaves: they never call back
// into the dispatcher.
var LockOrder = []LockRank{
	{Class: "internal/rt/overload.Controller.mu", BlockExempt: true},
	{Class: "internal/rt.shard.mu", MultiInstance: true},
	{Class: "internal/rt.Dispatcher.graphMu"},
	{Class: "internal/rt/resource.Ledger.mu"},
	{Class: "internal/rt.EventRecorder.mu"},
	{Class: "internal/rt/audit.Tracer.mu"},
}

// lockRank resolves a global lock class against the declared order,
// returning its index.
func lockRank(class string) (int, *LockRank) {
	for i := range LockOrder {
		e := &LockOrder[i]
		if class == e.Class || strings.HasSuffix(class, "/"+e.Class) {
			return i, e
		}
	}
	return -1, nil
}

func declaredOrderString() string {
	parts := make([]string, len(LockOrder))
	for i, e := range LockOrder {
		parts[i] = shortClass(e.Class)
	}
	return strings.Join(parts, " → ")
}

// shortClass compresses "repro/internal/rt.shard.mu" to "rt.shard.mu"
// for messages.
func shortClass(class string) string {
	if i := strings.LastIndexByte(class, '/'); i >= 0 {
		return class[i+1:]
	}
	return class
}

func runLockOrder(pass *Pass) error {
	findings := pass.Prog.lockOrderFindings()
	for _, f := range findings {
		if f.pkg == pass.pkg {
			pass.Reportf(f.pos, "%s", f.msg)
		}
	}
	return nil
}

// lockEdge is one observed "to acquired while from held" pair with a
// witness.
type lockEdge struct {
	from, to string
	pkg      *Package
	pos      token.Pos
	witness  string
}

// lockOrderFindings computes the program-wide lock-order diagnostics
// once: rank violations and double acquisitions are reported where
// the offending hold happens; cycles among unranked locks are reported
// at their first edge.
func (p *Program) lockOrderFindings() []progFinding {
	if p.lockFindingsOnce {
		return p.lockFindings
	}
	p.lockFindingsOnce = true
	p.build()

	var findings []progFinding
	report := func(pkg *Package, pos token.Pos, format string, args ...any) {
		findings = append(findings, progFinding{pkg: pkg, pos: pos, msg: fmt.Sprintf(format, args...)})
	}

	// Edges for cycle detection among unranked classes; ranked classes
	// are checked directly against the table.
	edges := make(map[string]map[string]lockEdge)
	addEdge := func(e lockEdge) {
		if e.from == "" || e.to == "" {
			return
		}
		m := edges[e.from]
		if m == nil {
			m = make(map[string]lockEdge)
			edges[e.from] = m
		}
		if _, ok := m[e.to]; !ok {
			m[e.to] = e
		}
	}

	checkPair := func(held heldRef, class string, pkg *Package, pos token.Pos, witness string, leafPath string) {
		if held.class == "" || class == "" {
			return
		}
		fromRank, fromEntry := lockRank(held.class)
		toRank, _ := lockRank(class)
		same := held.class == class
		if same && fromEntry != nil && fromEntry.MultiInstance {
			return // self-ordered multi-instance class (per-shard mutexes)
		}
		if same {
			report(pkg, pos,
				"%s acquired while already held (%s); non-reentrant mutex deadlocks here",
				shortClass(class), witness)
			return
		}
		if fromRank >= 0 && toRank >= 0 {
			if fromRank >= toRank {
				report(pkg, pos,
					"acquires %s while %s is held, against the declared lock order (%s); path: %s",
					shortClass(class), shortClass(held.class), declaredOrderString(), witness)
			}
			return // ranked pairs are fully decided by the table
		}
		addEdge(lockEdge{from: held.class, to: class, pkg: pkg, pos: pos, witness: strings.TrimSpace(witness + " " + leafPath)})
	}

	for _, n := range p.nodes {
		s := p.summary(n)
		for _, a := range s.acquires {
			for _, h := range a.held {
				// Same expression re-locked: certain deadlock regardless
				// of class tracking.
				if h.path == a.path {
					report(n.Pkg, a.pos,
						"%s locked twice in %s (first at %s); sync mutexes are not reentrant",
						a.path, n.Name(), n.Pkg.Fset.Position(h.pos))
					continue
				}
				checkPair(h, a.class, n.Pkg, a.pos, n.Name(), "")
			}
		}
		for _, c := range s.calls {
			if len(c.held) == 0 {
				continue
			}
			for _, t := range c.targets {
				for class, chain := range p.mayAcquire(t) {
					witness := witnessPath(n, append([]*FuncNode{t}, chain.via...))
					leaf := fmt.Sprintf("(acquired at %s)", n.Pkg.Fset.Position(chain.pos))
					for _, h := range c.held {
						checkPair(h, class, n.Pkg, c.pos, witness, leaf)
					}
				}
			}
		}
	}

	findings = append(findings, cycleFindings(edges)...)
	sort.SliceStable(findings, func(i, j int) bool { return findings[i].pos < findings[j].pos })
	p.lockFindings = findings
	return findings
}

// cycleFindings runs a DFS over the unranked-lock edge graph and
// reports each elementary cycle once, canonicalized by its smallest
// class, with the witness for every edge on the cycle.
func cycleFindings(edges map[string]map[string]lockEdge) []progFinding {
	var classes []string
	for c := range edges {
		classes = append(classes, c)
	}
	sort.Strings(classes)

	seen := make(map[string]bool) // canonical cycle keys already reported
	var findings []progFinding

	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int)
	var stack []string

	var visit func(c string)
	visit = func(c string) {
		color[c] = gray
		stack = append(stack, c)
		var tos []string
		for to := range edges[c] {
			tos = append(tos, to)
		}
		sort.Strings(tos)
		for _, to := range tos {
			switch color[to] {
			case white:
				visit(to)
			case gray:
				// Found a cycle: stack from `to` to top.
				i := len(stack) - 1
				for i >= 0 && stack[i] != to {
					i--
				}
				if i < 0 {
					continue
				}
				cyc := append([]string{}, stack[i:]...)
				key := canonicalCycle(cyc)
				if seen[key] {
					continue
				}
				seen[key] = true
				findings = append(findings, cycleFinding(cyc, edges))
			}
		}
		stack = stack[:len(stack)-1]
		color[c] = black
	}
	for _, c := range classes {
		if color[c] == white {
			visit(c)
		}
	}
	return findings
}

func canonicalCycle(cyc []string) string {
	min := 0
	for i := range cyc {
		if cyc[i] < cyc[min] {
			min = i
		}
	}
	rot := append(append([]string{}, cyc[min:]...), cyc[:min]...)
	return strings.Join(rot, "→")
}

func cycleFinding(cyc []string, edges map[string]map[string]lockEdge) progFinding {
	names := make([]string, 0, len(cyc)+1)
	for _, c := range cyc {
		names = append(names, shortClass(c))
	}
	names = append(names, shortClass(cyc[0]))
	var legs []string
	for i := range cyc {
		from, to := cyc[i], cyc[(i+1)%len(cyc)]
		e := edges[from][to]
		legs = append(legs, fmt.Sprintf("%s while %s held via %s",
			shortClass(to), shortClass(from), e.witness))
	}
	first := edges[cyc[0]][cyc[(0+1)%len(cyc)]]
	return progFinding{
		pkg: first.pkg,
		pos: first.pos,
		msg: fmt.Sprintf("lock-order cycle %s: %s; threads interleaving these acquisitions deadlock",
			strings.Join(names, " → "), strings.Join(legs, "; ")),
	}
}
