package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AtomicFieldAnalyzer enforces the repository's counter contract
// (DESIGN.md §6): a variable is either guarded by a mutex and always
// accessed plainly, or accessed exclusively through sync/atomic — a
// mixture is a data race that -race only catches when both sides
// actually collide in a test run. It reports
//
//  1. every plain (non-atomic) read or write of a struct field or
//     package-level variable whose address is elsewhere passed to a
//     sync/atomic function, and
//  2. every struct field used with a 64-bit sync/atomic function whose
//     offset is not 8-byte aligned under 32-bit (GOARCH=386) layout,
//     where such an access traps at runtime. Fields of the typed
//     atomic.Int64/Uint64 kinds are exempt: they carry their own
//     alignment and forbid plain access by construction (prefer them).
var AtomicFieldAnalyzer = &Analyzer{
	Name: "atomicfield",
	Doc:  "flags variables accessed both via sync/atomic and plainly, and misaligned 64-bit atomics",
	Run:  runAtomicField,
}

func runAtomicField(pass *Pass) error {
	// Pass 1: find every &v argument to a sync/atomic call. sanctioned
	// records the operand nodes so pass 2 does not count the atomic
	// access itself as a plain use.
	atomicUses := make(map[*types.Var][]token.Pos)
	atomic64 := make(map[*types.Var]bool)
	sanctioned := make(map[ast.Expr]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" || len(call.Args) == 0 {
				return true
			}
			addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok || addr.Op != token.AND {
				return true
			}
			operand := ast.Unparen(addr.X)
			v := referencedVar(pass.TypesInfo, operand)
			if v == nil {
				return true
			}
			if !v.IsField() && isLocalVar(v) {
				return true // locals are visible at a glance; the contract is about shared state
			}
			atomicUses[v] = append(atomicUses[v], call.Pos())
			sanctioned[operand] = true
			if strings.HasSuffix(fn.Name(), "64") {
				atomic64[v] = true
			}
			return true
		})
	}
	if len(atomicUses) == 0 {
		return nil
	}

	// Pass 2: any other appearance of those variables is a plain
	// access.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var v *types.Var
			switch x := n.(type) {
			case *ast.SelectorExpr:
				if sanctioned[ast.Expr(x)] {
					return false
				}
				sel, ok := pass.TypesInfo.Selections[x]
				if !ok || sel.Kind() != types.FieldVal {
					return true
				}
				v, _ = sel.Obj().(*types.Var)
			case *ast.Ident:
				if sanctioned[ast.Expr(x)] {
					return false
				}
				v, _ = pass.TypesInfo.Uses[x].(*types.Var)
				if v != nil && v.IsField() {
					return true // fields are reported at their selector, not the Sel ident
				}
			default:
				return true
			}
			if v == nil || atomicUses[v] == nil {
				return true
			}
			first := pass.Fset.Position(atomicUses[v][0])
			pass.Reportf(n.Pos(),
				"plain access to %s, which is accessed atomically at %s:%d; use sync/atomic for every access or a typed atomic",
				v.Name(), first.Filename, first.Line)
			return true
		})
	}

	reportMisaligned64(pass, atomic64)
	return nil
}

// reportMisaligned64 checks 32-bit layout for fields used with 64-bit
// atomics: on 386/arm, a 64-bit atomic on a non-8-byte-aligned address
// faults, and Go only guarantees alignment for the first word of an
// allocation (sync/atomic "Bugs" section).
func reportMisaligned64(pass *Pass, atomic64 map[*types.Var]bool) {
	if len(atomic64) == 0 {
		return
	}
	sizes := types.SizesFor("gc", "386")
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Defs[ts.Name]
			if obj == nil {
				return true
			}
			st, ok := obj.Type().Underlying().(*types.Struct)
			if !ok {
				return true
			}
			fields := make([]*types.Var, st.NumFields())
			for i := range fields {
				fields[i] = st.Field(i)
			}
			offsets := sizes.Offsetsof(fields)
			for i, fv := range fields {
				if atomic64[fv] && offsets[i]%8 != 0 {
					pass.Reportf(fv.Pos(),
						"field %s is used with 64-bit sync/atomic but sits at 32-bit offset %d (not 8-byte aligned); move it first in %s or use atomic.%s",
						fv.Name(), offsets[i], obj.Name(), typed64For(fv))
				}
			}
			return true
		})
	}
}

func typed64For(v *types.Var) string {
	if b, ok := v.Type().Underlying().(*types.Basic); ok && b.Kind() == types.Int64 {
		return "Int64"
	}
	return "Uint64"
}

// referencedVar resolves a selector or identifier to the variable it
// denotes, or nil.
func referencedVar(info *types.Info, e ast.Expr) *types.Var {
	switch x := e.(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[x]; ok && sel.Kind() == types.FieldVal {
			v, _ := sel.Obj().(*types.Var)
			return v
		}
		v, _ := info.Uses[x.Sel].(*types.Var)
		return v
	case *ast.Ident:
		v, _ := info.Uses[x].(*types.Var)
		return v
	}
	return nil
}

// isLocalVar reports whether v is function-local (not a field, not
// package-scoped).
func isLocalVar(v *types.Var) bool {
	if v.IsField() || v.Parent() == nil || v.Pkg() == nil {
		return false
	}
	return v.Parent() != v.Pkg().Scope()
}
