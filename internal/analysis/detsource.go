package analysis

import (
	"go/ast"
	"go/types"
)

// DetSourceAnalyzer enforces the replayability contract of the
// deterministic packages: internal/sim, internal/lottery,
// internal/experiments, internal/core, and internal/rt/audit must
// produce byte-identical results for a given seed (EXPERIMENTS.md
// pins golden outputs on this; the audit package's contract is that
// every timestamp arrives as an argument and sampling draws from an
// explicit seeded stream). Three nondeterminism sources are forbidden
// there:
//
//   - time.Now — simulated code must read the virtual clock
//     (sim.Time); wall-clock reads make traces unreproducible,
//   - the global math/rand (and math/rand/v2) top-level functions,
//     which draw from a shared, racily-seeded source — deterministic
//     code must thread an explicit seeded source (random.PM or
//     rand.New), and
//   - ranging over a map, whose iteration order is randomized per run;
//     iterate a sorted key slice instead.
//
// Deliberate wall-clock measurements (the §5.6 overhead experiment
// times host cost) are waived with a //lint:ignore detsource <reason>
// directive at the call site.
var DetSourceAnalyzer = &Analyzer{
	Name: "detsource",
	Doc:  "forbids time.Now, global math/rand, and map iteration in the deterministic packages",
	AppliesTo: pathSuffixMatcher(
		"internal/sim", "internal/lottery", "internal/experiments", "internal/core",
		"internal/rt/audit",
	),
	SkipTests: true,
	Run:       runDetSource,
}

// randConstructors are the math/rand names that create explicit,
// seedable sources — allowed; everything else exported from math/rand
// or math/rand/v2 operates on the shared global source.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func runDetSource(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.RangeStmt:
				if t := pass.TypesInfo.Types[x.X].Type; t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						pass.Reportf(x.Pos(),
							"map iteration order is nondeterministic; range over sorted keys instead")
					}
				}
			case *ast.SelectorExpr:
				pkgName, ok := pass.TypesInfo.Uses[identOf(x.X)].(*types.PkgName)
				if !ok {
					return true
				}
				switch pkgName.Imported().Path() {
				case "time":
					if x.Sel.Name == "Now" {
						pass.Reportf(x.Pos(),
							"time.Now in a deterministic package; use the simulation clock (sim.Time)")
					}
				case "math/rand", "math/rand/v2":
					obj := pass.TypesInfo.Uses[x.Sel]
					if _, isFunc := obj.(*types.Func); isFunc && !randConstructors[x.Sel.Name] {
						pass.Reportf(x.Pos(),
							"global math/rand.%s draws from a shared source; thread an explicit seeded source (random.PM or rand.New)",
							x.Sel.Name)
					}
				}
			}
			return true
		})
	}
	return nil
}

func identOf(e ast.Expr) *ast.Ident {
	id, _ := ast.Unparen(e).(*ast.Ident)
	return id
}
