package analysis

import (
	"fmt"
	"strings"
	"testing"
)

// runFixture loads ./testdata/src/<name>, runs one analyzer over it
// (bypassing AppliesTo, which is driver policy), and checks the
// diagnostics against the fixture's own expectations: a line carrying
//
//	// want "substring"
//
// must produce exactly one diagnostic on that line whose message
// contains the substring; any diagnostic without a matching want, or
// want without a diagnostic, fails the test. This is the local analog
// of x/tools' analysistest.
func runFixture(t *testing.T, a *Analyzer, name string) {
	t.Helper()
	pkgs, err := Load(".", "./testdata/src/"+name)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	// Subpackages (stubs the fixture imports) load as dependencies
	// only; the fixture root is the single listed target.
	if len(pkgs) != 1 {
		t.Fatalf("fixture %s: got %d packages, want 1", name, len(pkgs))
	}
	pkg := pkgs[0]

	diags, err := Run(a, pkg)
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, name, err)
	}

	type key struct {
		file string
		line int
	}
	wants := make(map[key][]string)
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, `// want "`)
				if !ok {
					continue
				}
				needle, ok := strings.CutSuffix(rest, `"`)
				if !ok {
					t.Fatalf("%s: malformed want comment %q", name, c.Text)
				}
				pos := pkg.Fset.Position(c.Pos())
				k := key{pos.Filename, pos.Line}
				wants[k] = append(wants[k], needle)
			}
		}
	}

	matched := make(map[key]int)
	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		needles := wants[k]
		if matched[k] < len(needles) && strings.Contains(d.Message, needles[matched[k]]) {
			matched[k]++
			continue
		}
		t.Errorf("unexpected diagnostic: %s", d)
	}
	for k, needles := range wants {
		for i := matched[k]; i < len(needles); i++ {
			t.Errorf("%s:%d: expected diagnostic containing %q, got none", k.file, k.line, needles[i])
		}
	}
}

func TestLockEmitFixture(t *testing.T)    { runFixture(t, LockEmitAnalyzer, "lockemit") }
func TestAtomicFieldFixture(t *testing.T) { runFixture(t, AtomicFieldAnalyzer, "atomicfield") }
func TestDetSourceFixture(t *testing.T)   { runFixture(t, DetSourceAnalyzer, "detsource") }
func TestCtxFlowFixture(t *testing.T)     { runFixture(t, CtxFlowAnalyzer, "ctxflow") }

// TestSuiteCleanOnRepo is the acceptance gate in test form: the full
// analyzer suite, driver-scoped exactly as cmd/lotterylint runs it,
// must be clean over the whole repository.
func TestSuiteCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("repo-wide load is not short")
	}
	pkgs, err := Load("", "repro/...")
	if err != nil {
		t.Fatalf("loading repository: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("suspiciously few packages loaded: %d", len(pkgs))
	}
	for _, pkg := range pkgs {
		diags, err := RunScoped(Analyzers, pkg)
		if err != nil {
			t.Fatalf("analyzing %s: %v", pkg.PkgPath, err)
		}
		for _, d := range diags {
			t.Errorf("%s", d)
		}
	}
}

// TestAnalyzerScoping pins each analyzer's package scope: detsource
// must cover exactly the deterministic packages, ctxflow only the
// binaries and examples, and the concurrency analyzers everything.
func TestAnalyzerScoping(t *testing.T) {
	cases := []struct {
		analyzer *Analyzer
		pkgPath  string
		want     bool
	}{
		{DetSourceAnalyzer, "repro/internal/sim", true},
		{DetSourceAnalyzer, "repro/internal/lottery", true},
		{DetSourceAnalyzer, "repro/internal/experiments", true},
		{DetSourceAnalyzer, "repro/internal/core", true},
		{DetSourceAnalyzer, "repro/internal/rt/audit", true},
		{DetSourceAnalyzer, "repro/internal/rt", false},
		{DetSourceAnalyzer, "repro/cmd/lotteryd", false},
		{CtxFlowAnalyzer, "repro/cmd/lotteryd", true},
		{CtxFlowAnalyzer, "repro/examples/quickstart", true},
		{CtxFlowAnalyzer, "repro/internal/rt", false},
		{LockEmitAnalyzer, "repro/internal/rt", true},
		{LockEmitAnalyzer, "repro/internal/metrics", true},
		{AtomicFieldAnalyzer, "anything/at/all", true},
	}
	for _, tc := range cases {
		applies := tc.analyzer.AppliesTo == nil || tc.analyzer.AppliesTo(tc.pkgPath)
		if applies != tc.want {
			t.Errorf("%s.AppliesTo(%q) = %v, want %v", tc.analyzer.Name, tc.pkgPath, applies, tc.want)
		}
	}
}

func ExampleDiagnostic() {
	d := Diagnostic{Analyzer: "detsource", Message: "time.Now in a deterministic package; use the simulation clock (sim.Time)"}
	d.Pos.Filename, d.Pos.Line, d.Pos.Column = "engine.go", 42, 7
	fmt.Println(d)
	// Output: engine.go:42:7: detsource: time.Now in a deterministic package; use the simulation clock (sim.Time)
}
