package analysis

import (
	"fmt"
	"os"
	"strings"
	"testing"
)

// loadFixture loads ./testdata/src/<name> and every package beneath it
// into one Program, so inter-procedural fixtures can spread lock
// classes and helpers across packages the way the real tree does.
func loadFixture(t *testing.T, name string) (*Program, []*Package) {
	t.Helper()
	pkgs, err := Load(".", "./testdata/src/"+name+"/...")
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("fixture %s: no packages loaded", name)
	}
	return NewProgram(pkgs), pkgs
}

// runFixture runs one analyzer over a fixture tree (bypassing
// AppliesTo, which is driver policy) and checks the diagnostics
// against the fixture's own expectations: a line carrying
//
//	// want "substring"
//
// must produce exactly one diagnostic on that line whose message
// contains the substring; any diagnostic without a matching want, or
// want without a diagnostic, fails the test. This is the local analog
// of x/tools' analysistest.
func runFixture(t *testing.T, a *Analyzer, name string) {
	t.Helper()
	prog, pkgs := loadFixture(t, name)

	var diags []Diagnostic
	for _, pkg := range pkgs {
		d, err := prog.Run(a, pkg)
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, pkg.PkgPath, err)
		}
		diags = append(diags, d...)
	}
	sortDiagnostics(diags)

	type key struct {
		file string
		line int
	}
	wants := make(map[key][]string)
	for _, pkg := range pkgs {
		for _, f := range pkg.Syntax {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, `// want "`)
					if !ok {
						continue
					}
					needle, ok := strings.CutSuffix(rest, `"`)
					if !ok {
						t.Fatalf("%s: malformed want comment %q", name, c.Text)
					}
					pos := pkg.Fset.Position(c.Pos())
					k := key{pos.Filename, pos.Line}
					wants[k] = append(wants[k], needle)
				}
			}
		}
	}

	matched := make(map[key]int)
	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		needles := wants[k]
		if matched[k] < len(needles) && strings.Contains(d.Message, needles[matched[k]]) {
			matched[k]++
			continue
		}
		t.Errorf("unexpected diagnostic: %s", d)
	}
	for k, needles := range wants {
		for i := matched[k]; i < len(needles); i++ {
			t.Errorf("%s:%d: expected diagnostic containing %q, got none", k.file, k.line, needles[i])
		}
	}
}

func TestLockOrderFixture(t *testing.T) { runFixture(t, LockOrderAnalyzer, "lockorder") }
func TestAtomicPubFixture(t *testing.T) { runFixture(t, AtomicPubAnalyzer, "atomicpub") }
func TestBlockingLockFixture(t *testing.T) {
	runFixture(t, BlockingLockAnalyzer, "blockinglock")
}
func TestDetSourceFixture(t *testing.T) { runFixture(t, DetSourceAnalyzer, "detsource") }
func TestCtxFlowFixture(t *testing.T)   { runFixture(t, CtxFlowAnalyzer, "ctxflow") }

// The retired single-package analyzers' fixtures pin backward
// compatibility: blockinglock subsumes lockemit's intra-procedural
// checks, atomicpub subsumes atomicfield's, message for message.
func TestLockEmitFixtureStillGreen(t *testing.T) {
	runFixture(t, BlockingLockAnalyzer, "lockemit")
}
func TestAtomicFieldFixtureStillGreen(t *testing.T) {
	runFixture(t, AtomicPubAnalyzer, "atomicfield")
}

// TestIgnoreDirectives pins //lint:ignore semantics per analyzer:
// suppression is scoped to the named analyzer, and the post-run audit
// reports malformed directives, unknown analyzer names, and stale
// waivers — each exactly once.
func TestIgnoreDirectives(t *testing.T) {
	prog, pkgs := loadFixture(t, "ignores")

	cases := []struct {
		analyzer *Analyzer
		want     []string // expected message substrings, in position order
	}{
		// relock's double acquisition is waived by name: silent.
		{LockOrderAnalyzer, nil},
		// wrongScope's waiver names lockorder, malformed's has no
		// reason: neither suppresses blockinglock.
		{BlockingLockAnalyzer, []string{
			"blocking call time.Sleep",
			"blocking call time.Sleep",
		}},
		{DetSourceAnalyzer, nil},
		{AtomicPubAnalyzer, nil},
	}
	for _, tc := range cases {
		var got []Diagnostic
		for _, pkg := range pkgs {
			d, err := prog.Run(tc.analyzer, pkg)
			if err != nil {
				t.Fatalf("running %s: %v", tc.analyzer.Name, err)
			}
			got = append(got, d...)
		}
		if len(got) != len(tc.want) {
			t.Errorf("%s: got %d diagnostics, want %d: %v", tc.analyzer.Name, len(got), len(tc.want), got)
			continue
		}
		for i, d := range got {
			if !strings.Contains(d.Message, tc.want[i]) {
				t.Errorf("%s: diagnostic %d = %q, want substring %q", tc.analyzer.Name, i, d.Message, tc.want[i])
			}
		}
	}

	// The audit runs after the analyzers so Used is settled.
	audit := CheckDirectives(Analyzers, pkgs)
	wantAudit := []string{
		`directive without a reason`,
		`unknown analyzer "nosuchcheck"`,
		`stale //lint:ignore (atomicpub)`,
		`stale //lint:ignore (lockorder)`,
	}
	var gotAudit []string
	for _, d := range audit {
		gotAudit = append(gotAudit, d.Message)
	}
	if len(gotAudit) != len(wantAudit) {
		t.Fatalf("directive audit: got %d findings %v, want %d", len(gotAudit), gotAudit, len(wantAudit))
	}
	matched := make([]bool, len(gotAudit))
	for _, w := range wantAudit {
		found := false
		for i, g := range gotAudit {
			if !matched[i] && strings.Contains(g, w) {
				matched[i], found = true, true
				break
			}
		}
		if !found {
			t.Errorf("directive audit: no finding containing %q in %v", w, gotAudit)
		}
	}
}

// TestUnknownAnalyzerRejected pins the driver-facing lookup: only
// suite names resolve.
func TestUnknownAnalyzerRejected(t *testing.T) {
	for _, a := range Analyzers {
		if AnalyzerByName(a.Name) != a {
			t.Errorf("AnalyzerByName(%q) did not round-trip", a.Name)
		}
	}
	for _, name := range []string{"nosuchcheck", "lockemit", "atomicfield", ""} {
		if got := AnalyzerByName(name); got != nil {
			t.Errorf("AnalyzerByName(%q) = %v, want nil", name, got)
		}
	}
}

// TestBaselineDiff pins the accept/fail split: baselined findings pass,
// new findings fail, and baseline entries nothing matched are stale.
func TestBaselineDiff(t *testing.T) {
	mk := func(analyzer, file, msg string) Diagnostic {
		d := Diagnostic{Analyzer: analyzer, Message: msg}
		d.Pos.Filename, d.Pos.Line = file, 10
		return d
	}
	b := &Baseline{Findings: []BaselineEntry{
		{Analyzer: "lockorder", File: "internal/rt/dispatcher.go", Message: "accepted inversion", Reason: "documented"},
		{Analyzer: "atomicpub", File: "internal/rt/shard.go", Message: "paid off", Reason: "was fixed"},
	}}
	diags := []Diagnostic{
		mk("lockorder", "internal/rt/dispatcher.go", "accepted inversion"), // baselined
		mk("blockinglock", "internal/rt/observer.go", "fresh finding"),     // new
	}
	news, stale := b.Diff("", diags)
	if len(news) != 1 || news[0].Message != "fresh finding" {
		t.Errorf("news = %v, want the one fresh finding", news)
	}
	if len(stale) != 1 || stale[0].Message != "paid off" {
		t.Errorf("stale = %v, want the one paid-off entry", stale)
	}

	// Line moves must not invalidate the baseline: identity is
	// analyzer+file+message.
	moved := mk("lockorder", "internal/rt/dispatcher.go", "accepted inversion")
	moved.Pos.Line = 999
	news, _ = b.Diff("", []Diagnostic{moved})
	if len(news) != 0 {
		t.Errorf("line move broke baseline match: %v", news)
	}
}

// TestBaselineRoundTrip pins the on-disk format and reason carryover.
func TestBaselineRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/lint_baseline.json"
	d := Diagnostic{Analyzer: "lockorder", Message: "kept"}
	d.Pos.Filename = dir + "/pkg/file.go"
	prev := &Baseline{Findings: []BaselineEntry{
		{Analyzer: "lockorder", File: "pkg/file.go", Message: "kept", Reason: "still justified"},
	}}
	if err := WriteBaseline(path, dir, []Diagnostic{d}, prev); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Findings) != 1 {
		t.Fatalf("got %d findings, want 1", len(got.Findings))
	}
	e := got.Findings[0]
	if e.File != "pkg/file.go" || e.Reason != "still justified" {
		t.Errorf("round-trip entry = %+v", e)
	}
	if _, err := LoadBaseline(dir + "/missing.json"); err == nil {
		t.Error("missing baseline loaded without error; a typo'd path must fail loudly")
	}
}

// TestSuiteCleanOnRepo is the acceptance gate in test form: the full
// analyzer suite, loaded and scoped exactly as cmd/lotterylint runs
// it, must be clean over the whole repository modulo the checked-in
// baseline — and the baseline itself must carry no stale entries.
func TestSuiteCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("repo-wide load is not short")
	}
	pkgs, err := Load("", "repro/...")
	if err != nil {
		t.Fatalf("loading repository: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("suspiciously few packages loaded: %d", len(pkgs))
	}
	diags, err := RunSuite(Analyzers, pkgs)
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	news, stale := diags, []BaselineEntry(nil)
	if b, err := LoadBaseline("../../lint_baseline.json"); err == nil {
		news, stale = b.Diff("../..", diags)
	} else if !os.IsNotExist(err) {
		t.Fatalf("loading baseline: %v", err)
	}
	for _, d := range news {
		t.Errorf("new finding: %s", d)
	}
	for _, e := range stale {
		t.Errorf("stale baseline entry: %s: %s: %s", e.File, e.Analyzer, e.Message)
	}
}

// TestAnalyzerScoping pins each analyzer's package scope: detsource
// must cover exactly the deterministic packages, ctxflow only the
// binaries and examples, and the concurrency analyzers everything —
// tests included.
func TestAnalyzerScoping(t *testing.T) {
	cases := []struct {
		analyzer *Analyzer
		pkgPath  string
		want     bool
	}{
		{DetSourceAnalyzer, "repro/internal/sim", true},
		{DetSourceAnalyzer, "repro/internal/lottery", true},
		{DetSourceAnalyzer, "repro/internal/experiments", true},
		{DetSourceAnalyzer, "repro/internal/core", true},
		{DetSourceAnalyzer, "repro/internal/rt/audit", true},
		{DetSourceAnalyzer, "repro/internal/rt", false},
		{DetSourceAnalyzer, "repro/cmd/lotteryd", false},
		{CtxFlowAnalyzer, "repro/cmd/lotteryd", true},
		{CtxFlowAnalyzer, "repro/examples/quickstart", true},
		{CtxFlowAnalyzer, "repro/internal/rt", false},
		{LockOrderAnalyzer, "repro/internal/rt", true},
		{AtomicPubAnalyzer, "anything/at/all", true},
		{BlockingLockAnalyzer, "repro/internal/metrics", true},
	}
	for _, tc := range cases {
		applies := tc.analyzer.AppliesTo == nil || tc.analyzer.AppliesTo(tc.pkgPath)
		if applies != tc.want {
			t.Errorf("%s.AppliesTo(%q) = %v, want %v", tc.analyzer.Name, tc.pkgPath, applies, tc.want)
		}
	}
	for _, a := range Analyzers {
		wantSkip := a == DetSourceAnalyzer || a == CtxFlowAnalyzer
		if a.SkipTests != wantSkip {
			t.Errorf("%s.SkipTests = %v, want %v (concurrency analyzers must cover _test.go)",
				a.Name, a.SkipTests, wantSkip)
		}
	}
}

func ExampleDiagnostic() {
	d := Diagnostic{Analyzer: "detsource", Message: "time.Now in a deterministic package; use the simulation clock (sim.Time)"}
	d.Pos.Filename, d.Pos.Line, d.Pos.Column = "engine.go", 42, 7
	fmt.Println(d)
	// Output: engine.go:42:7: detsource: time.Now in a deterministic package; use the simulation clock (sim.Time)
}
