// Package analysis is a small, dependency-free static-analysis
// framework modeled on golang.org/x/tools/go/analysis, hosting the
// repository's domain-specific correctness analyzers (see the
// Analyzers variable and DESIGN.md §6).
//
// The x/tools module is deliberately not imported: the repository is
// zero-dependency by policy, and the subset of the go/analysis API the
// suite needs — an Analyzer with a Run function over a type-checked
// package, diagnostics with positions, and a fixture-based test
// harness — is small enough to carry locally. The shapes mirror
// x/tools so the analyzers could be ported to a real multichecker by
// changing imports only.
//
// Analyzers are pure functions of a type-checked package; scoping
// (which packages an analyzer applies to) is declared on the Analyzer
// and enforced by the driver, so tests can run any analyzer against
// any fixture directly.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:ignore directives.
	Name string
	// Doc is a one-paragraph description of the contract enforced.
	Doc string
	// AppliesTo reports whether the analyzer should run over the
	// package with the given import path. A nil AppliesTo means every
	// package. The driver consults it; tests bypass it to run
	// analyzers against fixtures directly.
	AppliesTo func(pkgPath string) bool
	// Run performs the check, reporting findings via pass.Report.
	Run func(pass *Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	pkg *Package // for directive lookup
	out *[]Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos unless an ignore directive for this
// analyzer covers the position's line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.pkg != nil && p.pkg.ignored(p.Analyzer.Name, position) {
		return
	}
	*p.out = append(*p.out, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run applies the analyzer to a loaded package and returns its
// diagnostics sorted by position. It does not consult
// Analyzer.AppliesTo — that is the driver's job (see RunScoped).
func Run(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	var diags []Diagnostic
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Syntax,
		Pkg:       pkg.Types,
		TypesInfo: pkg.TypesInfo,
		pkg:       pkg,
		out:       &diags,
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
	}
	sortDiagnostics(diags)
	return diags, nil
}

// RunScoped applies every analyzer whose AppliesTo accepts the package
// and returns the merged, position-sorted diagnostics.
func RunScoped(analyzers []*Analyzer, pkg *Package) ([]Diagnostic, error) {
	var all []Diagnostic
	for _, a := range analyzers {
		if a.AppliesTo != nil && !a.AppliesTo(pkg.PkgPath) {
			continue
		}
		diags, err := Run(a, pkg)
		if err != nil {
			return nil, err
		}
		all = append(all, diags...)
	}
	sortDiagnostics(all)
	return all, nil
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
}

// Analyzers is the repository's full analyzer suite, in the order the
// driver runs them.
var Analyzers = []*Analyzer{
	LockEmitAnalyzer,
	AtomicFieldAnalyzer,
	DetSourceAnalyzer,
	CtxFlowAnalyzer,
}

// pathSuffixMatcher builds an AppliesTo that accepts package paths
// equal to or ending in "/"+one of the suffixes. Suffix matching (not
// equality) lets test fixtures under testdata/src mimic real package
// paths.
func pathSuffixMatcher(suffixes ...string) func(string) bool {
	return func(pkgPath string) bool {
		for _, s := range suffixes {
			if pkgPath == s || strings.HasSuffix(pkgPath, "/"+s) {
				return true
			}
		}
		return false
	}
}
