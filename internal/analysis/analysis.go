// Package analysis is a small, dependency-free static-analysis
// framework modeled on golang.org/x/tools/go/analysis, hosting the
// repository's domain-specific correctness analyzers (see the
// Analyzers variable and DESIGN.md §6).
//
// The x/tools module is deliberately not imported: the repository is
// zero-dependency by policy, and the subset of the go/analysis API the
// suite needs — analyzers over type-checked packages, diagnostics with
// positions, a fixture-based test harness — is small enough to carry
// locally.
//
// Since lotterylint v2 the framework is inter-procedural: Load pulls
// in every first-party package including its _test.go files, and a
// Program (see callgraph.go) resolves calls across packages — static
// calls, function values, and first-party interface dispatch — so the
// concurrency analyzers (lockorder, atomicpub, blockinglock) reason
// about what a function reaches, not just what it contains. Analyzers
// still run and report per package; the Program carries the shared,
// memoized program-wide facts. detsource and ctxflow remain
// single-package checks.
//
// Analyzer scoping (which packages, whether _test.go files count) is
// declared on the Analyzer and enforced by the driver, so tests can
// run any analyzer against any fixture directly.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:ignore directives.
	Name string
	// Doc is a one-paragraph description of the contract enforced.
	Doc string
	// AppliesTo reports whether the analyzer should run over the
	// package with the given import path. A nil AppliesTo means every
	// package. The driver consults it; tests bypass it to run
	// analyzers against fixtures directly.
	AppliesTo func(pkgPath string) bool
	// SkipTests suppresses diagnostics positioned in _test.go files.
	// The concurrency analyzers keep tests in scope (a data race in a
	// test is still a data race); the determinism and context-flow
	// contracts bind library code only.
	SkipTests bool
	// Run performs the check, reporting findings via pass.Reportf.
	Run func(pass *Pass) error
}

// Pass carries one analyzer's view of one type-checked package, plus
// the Program for inter-procedural facts.
type Pass struct {
	Analyzer  *Analyzer
	Prog      *Program
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	pkg *Package // for directive lookup
	out *[]Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos unless an ignore directive for this
// analyzer covers the position's line, or the analyzer skips test
// files and the position is in one.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.Analyzer.SkipTests && IsTestFile(position.Filename) {
		return
	}
	if p.pkg != nil && p.pkg.ignored(p.Analyzer.Name, position) {
		return
	}
	*p.out = append(*p.out, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run applies the analyzer to one package of the program and returns
// its diagnostics sorted by position. It does not consult
// Analyzer.AppliesTo — that is the driver's job (see RunScoped).
func (prog *Program) Run(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	var diags []Diagnostic
	pass := &Pass{
		Analyzer:  a,
		Prog:      prog,
		Fset:      pkg.Fset,
		Files:     pkg.Syntax,
		Pkg:       pkg.Types,
		TypesInfo: pkg.TypesInfo,
		pkg:       pkg,
		out:       &diags,
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
	}
	sortDiagnostics(diags)
	return diags, nil
}

// RunScoped applies every analyzer whose AppliesTo accepts the package
// and returns the merged, position-sorted diagnostics.
func (prog *Program) RunScoped(analyzers []*Analyzer, pkg *Package) ([]Diagnostic, error) {
	var all []Diagnostic
	for _, a := range analyzers {
		if a.AppliesTo != nil && !a.AppliesTo(pkg.PkgPath) {
			continue
		}
		diags, err := prog.Run(a, pkg)
		if err != nil {
			return nil, err
		}
		all = append(all, diags...)
	}
	sortDiagnostics(all)
	return all, nil
}

// Run applies one analyzer to a package as a single-package program —
// the fixture harness's entry point. Inter-procedural facts stay
// within the package.
func Run(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	return NewProgram([]*Package{pkg}).Run(a, pkg)
}

// RunSuite runs the scoped analyzer suite over every package of the
// program and returns the merged diagnostics plus directive findings
// (unknown analyzer names, missing reasons, stale waivers). This is
// the driver's entry point: program-wide facts are built once and
// shared across packages.
func RunSuite(analyzers []*Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	prog := NewProgram(pkgs)
	var all []Diagnostic
	for _, pkg := range pkgs {
		diags, err := prog.RunScoped(analyzers, pkg)
		if err != nil {
			return nil, err
		}
		all = append(all, diags...)
	}
	all = append(all, CheckDirectives(analyzers, pkgs)...)
	sortDiagnostics(all)
	return all, nil
}

// CheckDirectives audits //lint:ignore usage after a run: directives
// naming analyzers that do not exist, directives with no reason, and
// stale directives that suppressed nothing are all findings — a waiver
// that does not waive anything real is debt masquerading as
// justification. Must be called after the analyzers have run, since
// "stale" is defined by this run's suppressions.
func CheckDirectives(analyzers []*Analyzer, pkgs []*Package) []Diagnostic {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var out []Diagnostic
	report := func(d *Directive, format string, args ...any) {
		out = append(out, Diagnostic{
			Analyzer: "lintdirective",
			Pos:      d.Pos,
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for _, pkg := range pkgs {
		for _, d := range pkg.directives {
			if d.Malformed {
				report(d, "//lint:ignore directive without a reason; write //lint:ignore <analyzer> <why>")
				continue
			}
			unknown := false
			for _, n := range d.Names {
				if n != "all" && !known[n] {
					report(d, "//lint:ignore names unknown analyzer %q", n)
					unknown = true
				}
			}
			// An unknown name explains the staleness by itself; one
			// finding per mistake.
			if !d.Used && !unknown {
				report(d, "stale //lint:ignore (%s): no finding left to suppress; delete it",
					strings.Join(d.Names, ","))
			}
		}
	}
	sortDiagnostics(out)
	return out
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Message < diags[j].Message
	})
}

// Analyzers is the repository's full analyzer suite, in the order the
// driver runs them.
var Analyzers = []*Analyzer{
	LockOrderAnalyzer,
	AtomicPubAnalyzer,
	BlockingLockAnalyzer,
	DetSourceAnalyzer,
	CtxFlowAnalyzer,
}

// pathSuffixMatcher builds an AppliesTo that accepts package paths
// equal to or ending in "/"+one of the suffixes. Suffix matching (not
// equality) lets test fixtures under testdata/src mimic real package
// paths.
func pathSuffixMatcher(suffixes ...string) func(string) bool {
	return func(pkgPath string) bool {
		for _, s := range suffixes {
			if pkgPath == s || strings.HasSuffix(pkgPath, "/"+s) {
				return true
			}
		}
		return false
	}
}

// AnalyzerByName returns the named analyzer from the suite, or nil.
func AnalyzerByName(name string) *Analyzer {
	for _, a := range Analyzers {
		if a.Name == name {
			return a
		}
	}
	return nil
}
