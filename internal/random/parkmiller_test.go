package random

import (
	"math"
	"testing"
	"testing/quick"
)

// TestParkMillerKnownSequence verifies the generator against Park &
// Miller's published check: starting from seed 1, the 10,000th value
// is 1043618065 (CACM 31(10), 1988).
func TestParkMillerKnownSequence(t *testing.T) {
	p := NewPM(1)
	var v uint32
	for i := 0; i < 10000; i++ {
		v = p.Uint31()
	}
	if v != 1043618065 {
		t.Fatalf("10,000th Park-Miller value = %d, want 1043618065", v)
	}
}

// TestParkMillerFirstValues pins the head of the stream so that any
// accidental change to the recurrence is caught immediately.
func TestParkMillerFirstValues(t *testing.T) {
	p := NewPM(1)
	want := []uint32{16807, 282475249, 1622650073, 984943658, 1144108930}
	for i, w := range want {
		if got := p.Uint31(); got != w {
			t.Fatalf("value %d = %d, want %d", i, got, w)
		}
	}
}

func TestSeedNormalization(t *testing.T) {
	cases := []struct {
		seed uint32
		want uint32
	}{
		{0, 1}, // zero is degenerate, maps to 1
		{M, 1}, // M ≡ 0 (mod M), also degenerate
		{1, 1}, //
		{M - 1, M - 1},
		{M + 5, 5}, // reduced mod M
	}
	for _, c := range cases {
		p := NewPM(c.seed)
		if p.State() != c.want {
			t.Errorf("NewPM(%d).State() = %d, want %d", c.seed, p.State(), c.want)
		}
	}
}

// TestUint31Range checks the documented output range over a long run.
func TestUint31Range(t *testing.T) {
	p := NewPM(42)
	for i := 0; i < 100000; i++ {
		v := p.Uint31()
		if v < 1 || v > M-1 {
			t.Fatalf("Uint31() = %d out of range [1, %d]", v, M-1)
		}
	}
}

// TestParkMillerFullPeriodSample spot-checks that short cycles do not
// occur: over 1e6 draws from seed 1 the initial state never recurs.
// (The true period is M-1 ≈ 2.1e9; a recurrence inside 1e6 draws would
// indicate a broken recurrence.)
func TestParkMillerFullPeriodSample(t *testing.T) {
	p := NewPM(1)
	for i := 0; i < 1_000_000; i++ {
		if p.Uint31() == 1 {
			t.Fatalf("state returned to seed after %d draws", i+1)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	p := NewPM(7)
	for _, n := range []int{1, 2, 3, 10, 1000, 1 << 20} {
		for i := 0; i < 2000; i++ {
			v := p.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanics(t *testing.T) {
	p := NewPM(1)
	for _, n := range []int{0, -1, M} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Intn(%d) did not panic", n)
				}
			}()
			p.Intn(n)
		}()
	}
}

func TestInt64nBounds(t *testing.T) {
	p := NewPM(9)
	for _, n := range []int64{1, 5, M - 1, M, int64(M) * 1000, 1 << 50} {
		for i := 0; i < 500; i++ {
			v := p.Int64n(n)
			if v < 0 || v >= n {
				t.Fatalf("Int64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestInt64nPanics(t *testing.T) {
	p := NewPM(1)
	defer func() {
		if recover() == nil {
			t.Errorf("Int64n(0) did not panic")
		}
	}()
	p.Int64n(0)
}

// TestIntnUniform verifies approximate uniformity of Intn via a
// chi-square-style bound on bucket counts.
func TestIntnUniform(t *testing.T) {
	p := NewPM(12345)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[p.Intn(n)]++
	}
	expected := float64(draws) / n
	for b, c := range counts {
		dev := math.Abs(float64(c)-expected) / expected
		if dev > 0.05 {
			t.Errorf("bucket %d count %d deviates %.1f%% from uniform", b, c, dev*100)
		}
	}
}

// TestFloat64Moments checks the first two moments of Float64 against
// the uniform distribution on [0,1): mean 1/2, variance 1/12.
func TestFloat64Moments(t *testing.T) {
	p := NewPM(99)
	const draws = 200000
	var sum, sumSq float64
	for i := 0; i < draws; i++ {
		v := p.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
		sum += v
		sumSq += v * v
	}
	mean := sum / draws
	variance := sumSq/draws - mean*mean
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("mean = %v, want ~0.5", mean)
	}
	if math.Abs(variance-1.0/12) > 0.005 {
		t.Errorf("variance = %v, want ~%v", variance, 1.0/12)
	}
}

// TestPermIsPermutation is a property test: Perm(n) always returns a
// permutation of [0, n).
func TestPermIsPermutation(t *testing.T) {
	p := NewPM(3)
	f := func(nRaw uint8) bool {
		n := int(nRaw % 64)
		perm := p.Perm(n)
		if len(perm) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range perm {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestDeterminism: identical seeds give identical streams; Split gives
// a different but deterministic stream.
func TestDeterminism(t *testing.T) {
	a, b := NewPM(2024), NewPM(2024)
	for i := 0; i < 1000; i++ {
		if a.Uint31() != b.Uint31() {
			t.Fatal("same-seed streams diverged")
		}
	}
	c := NewPM(2024).Split()
	d := NewPM(2024).Split()
	if c.State() != d.State() {
		t.Fatal("Split is not deterministic")
	}
	if c.State() == 2024 {
		t.Fatal("Split did not derive a new seed")
	}
}

func TestScriptedSource(t *testing.T) {
	s := &Scripted{Values: []uint32{5, 10, 15}}
	for _, want := range []uint32{5, 10, 15} {
		if got := s.Uint31(); got != want {
			t.Fatalf("Scripted.Uint31() = %d, want %d", got, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("exhausted Scripted source did not panic")
		}
	}()
	s.Uint31()
}

func BenchmarkParkMiller(b *testing.B) {
	p := NewPM(1)
	var sink uint32
	for i := 0; i < b.N; i++ {
		sink = p.Uint31()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	p := NewPM(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink = p.Intn(1000)
	}
	_ = sink
}
