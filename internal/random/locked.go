package random

import "sync"

// Locked wraps a Source with a mutex so concurrent goroutines can
// share one stream. The stream stays deterministic as a multiset (the
// same values are produced for a given seed and draw count), but the
// assignment of values to goroutines depends on lock acquisition
// order. *PM itself is NOT safe for concurrent use; wrap it in Locked
// or give each goroutine its own shard (see Sharded) before sharing.
type Locked struct {
	mu  sync.Mutex
	src Source
}

// NewLocked returns src behind a mutex.
func NewLocked(src Source) *Locked {
	if src == nil {
		panic("random: NewLocked with nil source")
	}
	return &Locked{src: src}
}

// Uint31 implements Source.
func (l *Locked) Uint31() uint32 {
	l.mu.Lock()
	// The interface call expands to every Source in the program,
	// including *Locked itself — but src is a raw generator by
	// construction (nesting Locked in Locked buys nothing and NewLocked
	// is the only constructor), so the self-recursion the analyzer sees
	// cannot happen.
	//lint:ignore lockorder src is never another *Locked, so Uint31 cannot reenter this mutex
	v := l.src.Uint31()
	l.mu.Unlock()
	return v
}

var _ Source = (*Locked)(nil)

// Sharded is a fixed set of independent Park-Miller streams derived
// from one seed, one per shard. Concurrent components (e.g. worker
// goroutines) each take a distinct shard with Shard(i) and then draw
// without any locking: shard i's stream is fully determined by the
// master seed and i, regardless of how the other shards interleave.
//
// Shards are derived by splitting a master generator, so distinct
// shards carry distinct (and, for the Park-Miller generator's period
// of 2^31-2, non-overlapping in practice) state trajectories.
type Sharded struct {
	shards []*PM
}

// NewSharded returns n independent streams seeded from seed.
// It panics if n <= 0.
func NewSharded(seed uint32, n int) *Sharded {
	if n <= 0 {
		panic("random: NewSharded with non-positive shard count")
	}
	master := NewPM(seed)
	s := &Sharded{shards: make([]*PM, n)}
	for i := range s.shards {
		s.shards[i] = master.Split()
	}
	return s
}

// Len returns the shard count.
func (s *Sharded) Len() int { return len(s.shards) }

// Shard returns stream i. Each shard is a plain *PM: safe only for
// the single goroutine that owns it.
func (s *Sharded) Shard(i int) *PM { return s.shards[i] }
