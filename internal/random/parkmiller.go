// Package random implements the Park-Miller "minimal standard"
// pseudo-random number generator used by the paper's lottery scheduler
// (Appendix A), plus the small set of derived distributions the
// simulator and experiments need.
//
// The generator is the multiplicative linear congruential generator
//
//	S' = (A * S) mod M,  A = 16807,  M = 2^31 - 1
//
// implemented with the same overflow-folding trick as the paper's MIPS
// assembly: the 46-bit product is split at bit 31 and the two halves
// are added, which is congruent to the product modulo 2^31-1. The
// stream is identical to the reference implementation; seed 1 yields
// 1043618065 after 10,000 steps (Park & Miller's published check).
package random

// Park-Miller generator constants.
const (
	// A is the multiplier of the minimal standard generator.
	A = 16807
	// M is the modulus 2^31 - 1 (a Mersenne prime).
	M = 1<<31 - 1
)

// Source is the interface lottery draw structures use to obtain random
// numbers. It is satisfied by *PM and by test doubles that script the
// returned values.
type Source interface {
	// Uint31 returns a uniformly distributed value in [1, 2^31-2].
	// (The Park-Miller state space excludes 0 and M.)
	Uint31() uint32
}

// PM is a Park-Miller minimal standard generator. It is deliberately
// tiny: a single 32-bit word of state, no allocation, ~3 ns per draw.
// It is NOT safe for concurrent use; each simulator owns its own.
// Concurrent callers must either share one stream behind a mutex
// (Locked) or give each goroutine its own derived stream (Sharded).
type PM struct {
	state uint32
}

// NewPM returns a generator seeded with seed. A seed of 0 (which would
// fix the generator at 0 forever) is mapped to 1; seeds are otherwise
// reduced into the legal state range [1, M-1].
func NewPM(seed uint32) *PM {
	p := &PM{}
	p.Seed(seed)
	return p
}

// Seed resets the generator state. Zero and M map to 1 so that every
// seed produces a legal, non-degenerate stream.
func (p *PM) Seed(seed uint32) {
	seed %= M
	if seed == 0 {
		seed = 1
	}
	p.state = seed
}

// State returns the current raw generator state (the last value
// returned by Uint31, or the seed if no draws have been made).
func (p *PM) State() uint32 { return p.state }

// Uint31 advances the generator and returns the new state, a uniform
// value in [1, M-1]. This is the paper's fastrand.
func (p *PM) Uint31() uint32 {
	prod := uint64(p.state) * A
	// Fold the product at bit 31: (hi<<31 + lo) mod M == hi + lo (mod M)
	// because 2^31 ≡ 1 (mod 2^31-1).
	s := uint32(prod>>31) + uint32(prod&M)
	if s >= M {
		s -= M
	}
	p.state = s
	return s
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
// n must be < 2^31-1, which holds for every lottery the system runs
// (ticket totals are capped well below that by ticket.MaxBaseUnits).
func (p *PM) Intn(n int) int {
	if n <= 0 {
		panic("random: Intn with non-positive n")
	}
	if n >= M {
		panic("random: Intn range exceeds generator period")
	}
	// Rejection sampling to avoid modulo bias. The generator yields
	// values in [1, M-1]; shift to [0, M-2] first.
	limit := uint32((M - 1) / uint32(n) * uint32(n))
	for {
		v := p.Uint31() - 1
		if v < limit {
			return int(v % uint32(n))
		}
	}
}

// Int64n returns a uniform value in [0, n) for n up to 2^31-2 widths;
// larger n are composed from two draws.
func (p *PM) Int64n(n int64) int64 {
	if n <= 0 {
		panic("random: Int64n with non-positive n")
	}
	if n < M {
		return int64(p.Intn(int(n)))
	}
	// Compose a 62-bit uniform value from two 31-bit draws and reject.
	limit := (int64(1)<<62 - 1) / n * n
	for {
		hi := int64(p.Uint31()-1) & (1<<31 - 1)
		lo := int64(p.Uint31()-1) & (1<<31 - 1)
		v := hi<<31 | lo
		if v < limit {
			return v % n
		}
	}
}

// Float64 returns a uniform value in [0, 1).
func (p *PM) Float64() float64 {
	return float64(p.Uint31()-1) / float64(M-1)
}

// Perm returns a pseudo-random permutation of [0, n) using the
// Fisher-Yates shuffle.
func (p *PM) Perm(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := p.Intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// Split returns a new generator whose seed is derived from this
// generator's stream. It lets one experiment seed give independent
// streams to independent components.
func (p *PM) Split() *PM {
	return NewPM(p.Uint31())
}

var _ Source = (*PM)(nil)

// Int63n returns a uniform value in [0, n) drawn from src, for any
// positive n. It is the Source-interface counterpart of PM.Int64n, so
// callers holding only a Source (e.g. a Locked stream shared by
// concurrent retriers) can draw arbitrary ranges: small ranges use
// one rejection-sampled 31-bit draw, larger ones compose two.
func Int63n(src Source, n int64) int64 {
	if n <= 0 {
		panic("random: Int63n with non-positive n")
	}
	if n < M {
		limit := uint32((M - 1) / uint32(n) * uint32(n))
		for {
			v := src.Uint31() - 1
			if v < limit {
				return int64(v % uint32(n))
			}
		}
	}
	limit := (int64(1)<<62 - 1) / n * n
	for {
		hi := int64(src.Uint31()-1) & (1<<31 - 1)
		lo := int64(src.Uint31()-1) & (1<<31 - 1)
		v := hi<<31 | lo
		if v < limit {
			return v % n
		}
	}
}

// Scripted is a Source for tests: it replays a fixed sequence of
// values, then panics if exhausted. Values must lie in [1, 2^31-2].
type Scripted struct {
	Values []uint32
	next   int
}

// Uint31 returns the next scripted value.
func (s *Scripted) Uint31() uint32 {
	if s.next >= len(s.Values) {
		panic("random: Scripted source exhausted")
	}
	v := s.Values[s.next]
	s.next++
	return v
}

var _ Source = (*Scripted)(nil)
