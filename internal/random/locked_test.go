package random

import (
	"sync"
	"testing"
)

// TestLockedDeterministicMultiset checks that N concurrent drawers
// sharing a Locked source collectively consume exactly the first k
// values of the underlying stream (as a multiset), i.e. locking
// serializes the stream without skipping or duplicating values.
func TestLockedDeterministicMultiset(t *testing.T) {
	const (
		goroutines = 8
		perG       = 2000
	)
	l := NewLocked(NewPM(42))
	var mu sync.Mutex
	got := make(map[uint32]int)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]uint32, 0, perG)
			for i := 0; i < perG; i++ {
				local = append(local, l.Uint31())
			}
			mu.Lock()
			for _, v := range local {
				got[v]++
			}
			mu.Unlock()
		}()
	}
	wg.Wait()

	want := make(map[uint32]int)
	ref := NewPM(42)
	for i := 0; i < goroutines*perG; i++ {
		want[ref.Uint31()]++
	}
	if len(got) != len(want) {
		t.Fatalf("distinct values: got %d, want %d", len(got), len(want))
	}
	for v, n := range want {
		if got[v] != n {
			t.Fatalf("value %d drawn %d times, want %d", v, got[v], n)
		}
	}
}

func TestLockedNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewLocked(nil) did not panic")
		}
	}()
	NewLocked(nil)
}

// TestShardedIndependence checks that shards are deterministic per
// (seed, index) and that concurrent use of distinct shards neither
// races nor perturbs any shard's stream.
func TestShardedIndependence(t *testing.T) {
	const (
		shards = 4
		draws  = 5000
	)
	// Reference streams, drawn sequentially.
	want := make([][]uint32, shards)
	ref := NewSharded(7, shards)
	for i := 0; i < shards; i++ {
		want[i] = make([]uint32, draws)
		for j := 0; j < draws; j++ {
			want[i][j] = ref.Shard(i).Uint31()
		}
	}
	// Same streams, drawn concurrently from a fresh Sharded.
	s := NewSharded(7, shards)
	got := make([][]uint32, shards)
	var wg sync.WaitGroup
	for i := 0; i < shards; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			src := s.Shard(i)
			got[i] = make([]uint32, draws)
			for j := 0; j < draws; j++ {
				got[i][j] = src.Uint31()
			}
		}()
	}
	wg.Wait()
	for i := 0; i < shards; i++ {
		for j := 0; j < draws; j++ {
			if got[i][j] != want[i][j] {
				t.Fatalf("shard %d draw %d: got %d, want %d", i, j, got[i][j], want[i][j])
			}
		}
	}
}

func TestShardedDistinctStreams(t *testing.T) {
	s := NewSharded(1, 3)
	a, b, c := s.Shard(0).Uint31(), s.Shard(1).Uint31(), s.Shard(2).Uint31()
	if a == b || b == c || a == c {
		t.Fatalf("shards produced identical first draws: %d %d %d", a, b, c)
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
}
