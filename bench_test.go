package repro

// Benchmarks regenerating every table and figure in the paper's
// evaluation, plus the ablations DESIGN.md calls out. Figure benches
// run an abbreviated (scale 0.05-0.2) experiment per iteration and
// additionally report the headline experiment metric via
// b.ReportMetric, so `go test -bench=.` doubles as a results table.

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/kernel"
	"repro/internal/lottery"
	"repro/internal/random"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/ticket"
	"repro/internal/workload"
)

// --- Figure/table benches -------------------------------------------------

func BenchmarkFig4RateAccuracy(b *testing.B) {
	var slope float64
	for i := 0; i < b.N; i++ {
		cfg := experiments.Fig4Config{
			Seed: uint32(i + 1), MinRatio: 1, MaxRatio: 10, Runs: 1,
			Duration: 60 * sim.Second, Scale: 0.2,
		}
		slope = experiments.RunFig4(cfg).Slope
	}
	b.ReportMetric(slope, "fit-slope")
}

func BenchmarkFig5FairnessOverTime(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		cfg := experiments.DefaultFig5Config()
		cfg.Seed = uint32(i + 1)
		cfg.Scale = 0.2
		r := experiments.RunFig5(cfg)
		ratio = float64(r.TotalA) / float64(r.TotalB)
	}
	b.ReportMetric(ratio, "A:B-ratio")
}

func BenchmarkFig6MonteCarlo(b *testing.B) {
	var catchup float64
	for i := 0; i < b.N; i++ {
		cfg := experiments.DefaultFig6Config()
		cfg.Seed = uint32(i + 1)
		cfg.Scale = 0.2
		r := experiments.RunFig6(cfg)
		catchup = float64(r.FinalTrials[2]) / float64(r.FinalTrials[0])
	}
	b.ReportMetric(catchup, "task3/task1-trials")
}

func BenchmarkFig7ClientServer(b *testing.B) {
	var respRatio float64
	for i := 0; i < b.N; i++ {
		cfg := experiments.DefaultFig7Config()
		cfg.Seed = uint32(i + 1)
		cfg.Duration = 200 * sim.Second
		cfg.CorpusBytes = 200_000
		r := experiments.RunFig7(cfg)
		respRatio = stats.Ratio(r.Clients[2].MeanRespWhileASec, r.Clients[0].MeanRespWhileASec)
	}
	b.ReportMetric(respRatio, "C:A-resp-ratio")
}

func BenchmarkFig8Video(b *testing.B) {
	var abRatio float64
	for i := 0; i < b.N; i++ {
		cfg := experiments.DefaultFig8Config()
		cfg.Seed = uint32(i + 1)
		cfg.Scale = 0.2
		r := experiments.RunFig8(cfg)
		abRatio = r.Phase1[0] / r.Phase1[2]
	}
	b.ReportMetric(abRatio, "A:C-phase1")
}

func BenchmarkFig9Currencies(b *testing.B) {
	var insulation float64
	for i := 0; i < b.N; i++ {
		cfg := experiments.DefaultFig9Config()
		cfg.Seed = uint32(i + 1)
		cfg.Scale = 0.2
		r := experiments.RunFig9(cfg)
		insulation = r.A1RateAfter / r.A1RateBefore
	}
	b.ReportMetric(insulation, "A1-after/before")
}

func BenchmarkFig11Mutex(b *testing.B) {
	var acqRatio float64
	for i := 0; i < b.N; i++ {
		cfg := experiments.DefaultFig11Config()
		cfg.Seed = uint32(i + 1)
		cfg.Scale = 0.5
		acqRatio = experiments.RunFig11(cfg).AcqRatio
	}
	b.ReportMetric(acqRatio, "acq-ratio")
}

func BenchmarkOverheadSec56(b *testing.B) {
	var delta float64
	for i := 0; i < b.N; i++ {
		cfg := experiments.DefaultOverheadConfig()
		cfg.Seed = uint32(i + 1)
		cfg.Scale = 0.1
		cfg.DBClients, cfg.DBQueries, cfg.CorpusBytes = 3, 5, 100_000
		r := experiments.RunOverhead(cfg)
		delta = float64(r.Rows[0].TotalIterations) / float64(r.Rows[1].TotalIterations)
	}
	b.ReportMetric(delta, "lottery/timesharing-work")
}

func BenchmarkInverseLottery(b *testing.B) {
	var share float64
	for i := 0; i < b.N; i++ {
		cfg := experiments.DefaultInverseConfig()
		cfg.Seed = uint32(i + 1)
		cfg.Scale = 0.3
		share = experiments.RunInverse(cfg).Rows[0].ResidencyShare
	}
	b.ReportMetric(share, "top-client-share")
}

func BenchmarkSec2Analytics(b *testing.B) {
	var cov float64
	for i := 0; i < b.N; i++ {
		cfg := experiments.DefaultAnalyticsConfig()
		cfg.Seed = uint32(i + 1)
		cfg.Scale = 0.2
		cov = experiments.RunAnalytics(cfg).Rows[1].ObservedCoV
	}
	b.ReportMetric(cov, "CoV(p=0.25)")
}

// --- Core-mechanism micro-benches -----------------------------------------

// BenchmarkDrawList/Tree measure a single lottery draw at several
// client counts: the list is O(n), the tree O(log n) — the §4.2/§5.6
// scaling claim.
func BenchmarkDraw(b *testing.B) {
	for _, n := range []int{8, 64, 512, 4096} {
		weights := make([]float64, n)
		rng := random.NewPM(7)
		for i := range weights {
			weights[i] = float64(1 + rng.Intn(100))
		}
		b.Run(fmt.Sprintf("list/n=%d", n), func(b *testing.B) {
			l := lottery.NewList[int](false)
			for i, w := range weights {
				l.Add(i, w)
			}
			src := random.NewPM(1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				l.Draw(src)
			}
		})
		b.Run(fmt.Sprintf("tree/n=%d", n), func(b *testing.B) {
			tr := lottery.NewTree[int](n)
			for i, w := range weights {
				tr.Add(i, w)
			}
			src := random.NewPM(1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr.Draw(src)
			}
		})
	}
}

// BenchmarkAblationMoveToFront shows the §4.2 heuristic: with a
// skewed ticket distribution, move-to-front shortens the average
// search dramatically.
func BenchmarkAblationMoveToFront(b *testing.B) {
	run := func(b *testing.B, mtf bool) {
		l := lottery.NewList[int](mtf)
		// 1 dominant client at the tail of 256.
		for i := 0; i < 255; i++ {
			l.Add(i, 1)
		}
		l.Add(255, 255*9)
		src := random.NewPM(3)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			l.Draw(src)
		}
	}
	b.Run("off", func(b *testing.B) { run(b, false) })
	b.Run("on", func(b *testing.B) { run(b, true) })
}

// BenchmarkCurrencyValuation measures base-unit conversion through a
// funding chain of the given depth, cached vs invalidated.
func BenchmarkCurrencyValuation(b *testing.B) {
	for _, depth := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("depth=%d/cached", depth), func(b *testing.B) {
			s, h := currencyChain(depth)
			h.SetActive(true)
			b.ResetTimer()
			var sink float64
			for i := 0; i < b.N; i++ {
				sink = h.Value()
			}
			_ = sink
			_ = s
		})
		b.Run(fmt.Sprintf("depth=%d/invalidated", depth), func(b *testing.B) {
			s, h := currencyChain(depth)
			h.SetActive(true)
			tk := h.Backing()[0]
			b.ResetTimer()
			var sink float64
			for i := 0; i < b.N; i++ {
				// Touch the graph so every valuation recomputes.
				if err := tk.SetAmount(ticket.Amount(1 + i%7)); err != nil {
					b.Fatal(err)
				}
				sink = h.Value()
			}
			_ = sink
			_ = s
		})
	}
}

func currencyChain(depth int) (*ticket.System, *ticket.Holder) {
	s := ticket.NewSystem()
	cur := s.Base()
	for d := 0; d < depth; d++ {
		next := s.MustCurrency(fmt.Sprintf("c%d", d), "u")
		cur.MustIssue(100, next)
		cur = next
	}
	h := s.NewHolder("h")
	cur.MustIssue(10, h)
	return s, h
}

// BenchmarkSchedulingDecision measures one policy decision (the §5.6
// "core lottery scheduling mechanism is extremely lightweight" claim)
// across policies and run-queue sizes.
func BenchmarkSchedulingDecision(b *testing.B) {
	for _, n := range []int{2, 8, 64} {
		mk := map[string]func() sched.Policy{
			"lottery":        func() sched.Policy { return sched.NewLottery(random.NewPM(1), true) },
			"static-lottery": func() sched.Policy { return sched.NewStaticLottery(random.NewPM(1)) },
			"stride":         func() sched.Policy { return sched.NewStride() },
			"timesharing":    func() sched.Policy { return sched.NewTimeSharing() },
			"round-robin":    func() sched.Policy { return sched.NewRoundRobin() },
		}
		for _, name := range []string{"lottery", "static-lottery", "stride", "timesharing", "round-robin"} {
			b.Run(fmt.Sprintf("%s/n=%d", name, n), func(b *testing.B) {
				p := mk[name]()
				for i := 0; i < n; i++ {
					w := float64(100 + i)
					p.Add(&sched.Client{ID: i, Name: fmt.Sprint(i), Weight: func() float64 { return w }}, 0)
				}
				const q = 100 * sim.Millisecond
				now := sim.Time(0)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					c := p.Pick(now)
					p.Used(c, q, q, false, now)
					now = now.Add(q)
				}
			})
		}
	}
}

// BenchmarkAblationCompensation quantifies §4.5: the CPU-share error
// of an I/O-bound thread (20 ms bursts, equal funding vs a hog) with
// compensation tickets on (real behaviour) and off (yields reported
// as involuntary). The reported metric is the I/O thread's share of
// the CPU; 0.5 is perfect.
func BenchmarkAblationCompensation(b *testing.B) {
	run := func(b *testing.B, voluntary bool) {
		var share float64
		for i := 0; i < b.N; i++ {
			p := sched.NewLottery(random.NewPM(uint32(i+1)), false)
			wA, wB := 400.0, 400.0
			a := &sched.Client{ID: 0, Name: "hog", Weight: func() float64 { return wA }}
			io := &sched.Client{ID: 1, Name: "io", Weight: func() float64 { return wB }}
			const q = 100 * sim.Millisecond
			now := sim.Time(0)
			p.Add(a, now)
			p.Add(io, now)
			var cpuA, cpuIO sim.Duration
			for j := 0; j < 20000; j++ {
				c := p.Pick(now)
				if c == a {
					cpuA += q
					now = now.Add(q)
					p.Used(a, q, q, false, now)
				} else {
					used := 20 * sim.Millisecond
					cpuIO += used
					now = now.Add(used)
					p.Used(io, used, q, voluntary, now)
				}
			}
			share = float64(cpuIO) / float64(cpuA+cpuIO)
		}
		b.ReportMetric(share, "io-share")
	}
	b.Run("on", func(b *testing.B) { run(b, true) })
	b.Run("off", func(b *testing.B) { run(b, false) })
}

// BenchmarkAblationQuantum shows the §5.1 claim that shorter quanta
// tighten short-horizon fairness: the reported metric is the CoV of
// the A:B CPU ratio over 1-second windows at each quantum.
func BenchmarkAblationQuantum(b *testing.B) {
	for _, q := range []sim.Duration{10 * sim.Millisecond, 50 * sim.Millisecond, 100 * sim.Millisecond} {
		b.Run(fmt.Sprint(q), func(b *testing.B) {
			var cov float64
			for i := 0; i < b.N; i++ {
				cov = windowRatioCoV(uint32(i+1), q)
			}
			b.ReportMetric(cov, "ratio-CoV")
		})
	}
}

func windowRatioCoV(seed uint32, quantum sim.Duration) float64 {
	sys := core.NewSystem(core.WithSeed(seed), core.WithQuantum(quantum))
	defer sys.Shutdown()
	spin := func(ctx *kernel.Ctx) {
		for {
			ctx.Compute(5 * sim.Millisecond)
		}
	}
	a := sys.Spawn("A", spin)
	bb := sys.Spawn("B", spin)
	a.Fund(200)
	bb.Fund(100)
	var ratios []float64
	lastA, lastB := sim.Duration(0), sim.Duration(0)
	for w := 0; w < 30; w++ {
		sys.RunFor(1 * sim.Second)
		dA := a.CPUTime() - lastA
		dB := bb.CPUTime() - lastB
		lastA, lastB = a.CPUTime(), bb.CPUTime()
		if dB > 0 {
			ratios = append(ratios, float64(dA)/float64(dB))
		}
	}
	return stats.CoV(ratios)
}

// BenchmarkAblationStrideVsLottery compares long-run allocation error
// of the randomized lottery against deterministic stride scheduling
// (metric: |observed/allocated - 1| over a 3:1 split).
func BenchmarkAblationStrideVsLottery(b *testing.B) {
	run := func(b *testing.B, usePolicy func() sched.Policy) {
		var absErr float64
		for i := 0; i < b.N; i++ {
			opts := []core.Option{core.WithSeed(uint32(i + 1))}
			if p := usePolicy(); p != nil {
				opts = append(opts, core.WithPolicy(p))
			}
			sys := core.NewSystem(opts...)
			spin := func(ctx *kernel.Ctx) {
				for {
					ctx.Compute(10 * sim.Millisecond)
				}
			}
			x := sys.Spawn("x", spin)
			y := sys.Spawn("y", spin)
			x.Fund(300)
			y.Fund(100)
			sys.RunFor(60 * sim.Second)
			ratio := float64(x.CPUTime()) / float64(y.CPUTime())
			if ratio > 3 {
				absErr = ratio/3 - 1
			} else {
				absErr = 3/ratio - 1
			}
			sys.Shutdown()
		}
		b.ReportMetric(absErr, "abs-rel-err")
	}
	b.Run("lottery", func(b *testing.B) { run(b, func() sched.Policy { return nil }) })
	b.Run("stride", func(b *testing.B) { run(b, func() sched.Policy { return sched.NewStride() }) })
}

// BenchmarkIOBandwidth regenerates the §6 bandwidth-sharing result
// and reports the top stream's byte share (allocated 0.5).
func BenchmarkIOBandwidth(b *testing.B) {
	var share float64
	for i := 0; i < b.N; i++ {
		cfg := experiments.DefaultIOBWConfig()
		cfg.Seed = uint32(i + 1)
		cfg.Scale = 0.2
		share = experiments.RunIOBW(cfg).Rows[0].ByteShare
	}
	b.ReportMetric(share, "top-stream-share")
}

// BenchmarkInversion regenerates the priority-inversion comparison and
// reports the lottery regime's lock-wait (the fixed regime never
// completes).
func BenchmarkInversion(b *testing.B) {
	var wait float64
	for i := 0; i < b.N; i++ {
		cfg := experiments.DefaultInversionConfig()
		cfg.Seed = uint32(i + 1)
		cfg.Scale = 0.5
		wait = experiments.RunInversion(cfg).LotteryWaitSec
	}
	b.ReportMetric(wait, "lottery-wait-sec")
}

// BenchmarkMultiCall measures a 4-way split-transfer RPC round trip
// end to end.
func BenchmarkMultiCall(b *testing.B) {
	sys := core.NewSystem(core.WithSeed(1))
	defer sys.Shutdown()
	ports := make([]*kernel.Port, 4)
	for i := range ports {
		i := i
		ports[i] = sys.NewPort("svc")
		s := sys.Spawn("server", func(ctx *kernel.Ctx) {
			for {
				m := ports[i].Receive(ctx)
				ctx.Compute(sim.Millisecond)
				ports[i].Reply(ctx, m, nil)
			}
		})
		s.Fund(1)
	}
	calls := 0
	client := sys.Spawn("client", func(ctx *kernel.Ctx) {
		for {
			kernel.MultiCall(ctx, ports, make([]any, 4))
			calls++
		}
	})
	client.Fund(400)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		target := calls + 1
		for calls < target {
			sys.RunFor(10 * sim.Millisecond)
		}
	}
}

// BenchmarkDhrystoneKernel pins the host-side cost of the real
// benchmark kernel used for absolute calibration.
func BenchmarkDhrystoneKernel(b *testing.B) {
	var sink int
	for i := 0; i < b.N; i++ {
		sink = workload.DhrystoneKernel(100)
	}
	_ = sink
}

// BenchmarkSimulatedSecond measures simulator throughput: how much
// host time one second of a busy two-task virtual machine costs.
func BenchmarkSimulatedSecond(b *testing.B) {
	sys := core.NewSystem(core.WithSeed(1))
	defer sys.Shutdown()
	spin := func(ctx *kernel.Ctx) {
		for {
			ctx.Compute(1 * sim.Millisecond)
		}
	}
	sys.Spawn("a", spin).Fund(100)
	sys.Spawn("b", spin).Fund(100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.RunFor(1 * sim.Second)
	}
}
