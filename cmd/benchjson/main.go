// Command benchjson converts `go test -bench` text output (on stdin)
// into a JSON record, so benchmark history can be tracked in files
// like BENCH_rt.json:
//
//	go test -run xxx -bench . ./internal/rt/ | benchjson -o BENCH_rt.json
//
// With -o - (the default) the JSON is written to stdout.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/benchfmt"
)

func main() {
	out := flag.String("o", "-", "output file (- for stdout)")
	flag.Parse()

	set, err := benchfmt.Parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(set.Results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	buf, err := json.MarshalIndent(set, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
