// Command benchjson converts `go test -bench` text output (on stdin)
// into a JSON record, so benchmark history can be tracked in files
// like BENCH_rt.json:
//
//	go test -run xxx -bench . ./internal/rt/ | benchjson -o BENCH_rt.json
//
// With -o - (the default) the JSON is written to stdout.
//
// On the write path each multi-proc result also gets a derived
// "speedup" metric: its tasks/s divided by the same benchmark's
// tasks/s at GOMAXPROCS=1, so BENCH files record scaling alongside
// the raw numbers.
//
// With -compare it instead diffs two such records and gates on
// latency regressions:
//
//	benchjson -compare old.json new.json          # fail beyond +10% ns/op
//	benchjson -tol 0.25 -compare old.json new.json
//	benchjson -tailtol 1.0 -compare old.json new.json
//
// Benchmarks are matched by name and GOMAXPROCS; per-benchmark ns/op
// deltas are printed for every match, added and removed benchmarks
// are noted, and the exit status is non-zero when any matched
// benchmark slowed down by more than -tol (a fraction of the old
// ns/op) or its reported wait-p99-ns tail grew by more than -tailtol
// (tails are noisier than means, so the tail gate is looser).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/benchfmt"
)

func main() {
	out := flag.String("o", "-", "output file (- for stdout)")
	compare := flag.Bool("compare", false, "compare two benchmark JSON files: -compare old.json new.json")
	tol := flag.Float64("tol", 0.10, "ns/op regression tolerance for -compare, as a fraction (0.10 = +10%)")
	tailTol := flag.Float64("tailtol", 0.50, "wait-p99-ns regression tolerance for -compare, as a fraction (0.50 = +50%)")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly two arguments: old.json new.json")
			os.Exit(2)
		}
		os.Exit(runCompare(flag.Arg(0), flag.Arg(1), *tol, *tailTol))
	}

	set, err := benchfmt.Parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(set.Results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	benchfmt.AddSpeedups(set, "tasks/s")
	buf, err := json.MarshalIndent(set, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func runCompare(oldPath, newPath string, tol, tailTol float64) int {
	oldSet, err := loadSet(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 1
	}
	newSet, err := loadSet(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 1
	}
	deltas := benchfmt.Compare(oldSet, newSet)
	if len(deltas) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no comparable benchmarks (ns/op) in either file")
		return 1
	}
	printDeltas(deltas)
	tails := benchfmt.CompareMetric(oldSet, newSet, "wait-p99-ns")
	if len(tails) > 0 {
		fmt.Printf("\nwait-p99-ns:\n")
		printDeltas(tails)
	}
	code := 0
	if regs := benchfmt.Regressions(deltas, tol); len(regs) > 0 {
		reportRegressions(regs, tol)
		code = 1
	}
	if regs := benchfmt.Regressions(tails, tailTol); len(regs) > 0 {
		reportRegressions(regs, tailTol)
		code = 1
	}
	return code
}

func printDeltas(deltas []benchfmt.Delta) {
	for _, d := range deltas {
		name := fmt.Sprintf("%s-%d", d.Name, d.Procs)
		switch {
		case d.NewOnly:
			fmt.Printf("%-60s %12s %12.1f    (added)\n", name, "-", d.New)
		case d.OldOnly:
			fmt.Printf("%-60s %12.1f %12s    (removed)\n", name, d.Old, "-")
		default:
			fmt.Printf("%-60s %12.1f %12.1f  %+7.1f%%\n", name, d.Old, d.New, d.Ratio*100)
		}
	}
}

func reportRegressions(regs []benchfmt.Delta, tol float64) {
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) regressed beyond +%.0f%% %s:\n",
		len(regs), tol*100, regs[0].Metric)
	for _, d := range regs {
		fmt.Fprintf(os.Stderr, "  %s-%d: %.1f -> %.1f %s (%+.1f%%)\n",
			d.Name, d.Procs, d.Old, d.New, d.Metric, d.Ratio*100)
	}
}

func loadSet(path string) (*benchfmt.Set, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	set := new(benchfmt.Set)
	if err := json.Unmarshal(buf, set); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return set, nil
}
