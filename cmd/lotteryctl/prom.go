package main

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// promSample is one exposition line: a metric's label set and value.
type promSample struct {
	labels map[string]string
	value  float64
}

// promText indexes a Prometheus text exposition by family name. The
// parser covers the subset the metrics registry emits — `name value`
// and `name{k="v",...} value` lines with \\, \", and \n escapes —
// which is all lotteryctl needs to read its own daemon.
type promText map[string][]promSample

func parsePromText(r io.Reader) (promText, error) {
	out := make(promText)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, rest, labels, err := splitPromLine(line)
		if err != nil {
			return nil, err
		}
		val, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err != nil {
			return nil, fmt.Errorf("bad value in %q: %v", line, err)
		}
		out[name] = append(out[name], promSample{labels: labels, value: val})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func splitPromLine(line string) (name, rest string, labels map[string]string, err error) {
	brace := strings.IndexByte(line, '{')
	space := strings.IndexByte(line, ' ')
	if brace < 0 || (space >= 0 && space < brace) {
		if space < 0 {
			return "", "", nil, fmt.Errorf("unparseable metrics line %q", line)
		}
		return line[:space], line[space+1:], nil, nil
	}
	name = line[:brace]
	labels = make(map[string]string)
	i := brace + 1
	for i < len(line) && line[i] != '}' {
		eq := strings.IndexByte(line[i:], '=')
		if eq < 0 || i+eq+1 >= len(line) || line[i+eq+1] != '"' {
			return "", "", nil, fmt.Errorf("bad label in %q", line)
		}
		key := line[i : i+eq]
		j := i + eq + 2 // past ="
		var val strings.Builder
		for j < len(line) && line[j] != '"' {
			if line[j] == '\\' && j+1 < len(line) {
				j++
				switch line[j] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(line[j])
				}
			} else {
				val.WriteByte(line[j])
			}
			j++
		}
		if j >= len(line) {
			return "", "", nil, fmt.Errorf("unterminated label value in %q", line)
		}
		labels[key] = val.String()
		i = j + 1
		if i < len(line) && line[i] == ',' {
			i++
		}
	}
	if i >= len(line) || i+2 > len(line) || line[i+1] != ' ' {
		return "", "", nil, fmt.Errorf("missing value in %q", line)
	}
	return name, line[i+2:], labels, nil
}

// sumBy sums a family's samples grouped by one label's value.
func (p promText) sumBy(family, label string) map[string]float64 {
	out := make(map[string]float64)
	for _, s := range p[family] {
		out[s.labels[label]] += s.value
	}
	return out
}

// quantile estimates quantile q of a classic Prometheus histogram
// restricted to samples whose label matches, merging buckets across
// the remaining labels. It returns the upper bound of the bucket the
// quantile falls in (the registry's buckets double, so the estimate is
// within 2x), or NaN with ok=false when the histogram is empty.
func (p promText) quantile(family, label, value string, q float64) (float64, bool) {
	cum := make(map[float64]float64) // le -> cumulative count
	for _, s := range p[family+"_bucket"] {
		if s.labels[label] != value {
			continue
		}
		le, err := strconv.ParseFloat(s.labels["le"], 64)
		if err != nil { // +Inf parses; anything else is malformed
			continue
		}
		cum[le] += s.value
	}
	les := make([]float64, 0, len(cum))
	for le := range cum {
		les = append(les, le)
	}
	sort.Float64s(les)
	if len(les) == 0 {
		return 0, false
	}
	total := cum[les[len(les)-1]]
	if total == 0 {
		return 0, false
	}
	rank := q * total
	for _, le := range les {
		if cum[le] >= rank {
			return le, true
		}
	}
	return les[len(les)-1], true
}
