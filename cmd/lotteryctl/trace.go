package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"
)

// traceSpan mirrors one /debug/trace JSON line.
type traceSpan struct {
	AtNS       int64  `json:"at_ns"`
	Kind       string `json:"kind"`
	Who        string `json:"who"`
	Tenant     string `json:"tenant"`
	ID         uint64 `json:"id"`
	Shard      int    `json:"shard"`
	Worker     int    `json:"worker"`
	ReserveNS  int64  `json:"reserve_ns"`
	QueueNS    int64  `json:"queue_ns"`
	DispatchNS int64  `json:"dispatch_ns"`
	RunNS      int64  `json:"run_ns"`
	Err        string `json:"err"`
}

// runTrace implements `lotteryctl trace`: tail the daemon's span
// flight recorder, one formatted line per sampled task. -follow polls
// with the X-Trace-Last-ID cursor so each span prints exactly once
// (X-Trace-Missed reports ring evictions between polls).
func runTrace(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("lotteryctl trace", flag.ContinueOnError)
	addr := fs.String("addr", "http://127.0.0.1:8080", "lotteryd base URL")
	n := fs.Int("n", 20, "spans per request (0 = everything retained)")
	follow := fs.Bool("follow", false, "poll for new spans instead of exiting")
	interval := fs.Duration("interval", time.Second, "poll interval with -follow")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var cursor uint64
	first := true
	for {
		url := fmt.Sprintf("%s/debug/trace?n=%d", *addr, *n)
		if !first {
			url = fmt.Sprintf("%s/debug/trace?after=%d", *addr, cursor)
		}
		last, missed, err := traceTail(url, out)
		if err != nil {
			return err
		}
		if missed > 0 && !first {
			fmt.Fprintf(out, "... %d spans evicted between polls (raise -trace-buf or poll faster)\n", missed)
		}
		cursor = last
		first = false
		if !*follow {
			return nil
		}
		time.Sleep(*interval)
	}
}

func traceTail(url string, out io.Writer) (last, missed uint64, err error) {
	resp, err := http.Get(url)
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return 0, 0, fmt.Errorf("%s: %s: %s", url, resp.Status, body)
	}
	last, _ = strconv.ParseUint(resp.Header.Get("X-Trace-Last-ID"), 10, 64)
	missed, _ = strconv.ParseUint(resp.Header.Get("X-Trace-Missed"), 10, 64)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var sp traceSpan
		if err := json.Unmarshal(sc.Bytes(), &sp); err != nil {
			return last, missed, fmt.Errorf("bad span line %q: %v", sc.Text(), err)
		}
		fmt.Fprintln(out, formatSpan(sp))
	}
	return last, missed, sc.Err()
}

func formatSpan(sp traceSpan) string {
	place := "-"
	if sp.Shard >= 0 {
		place = fmt.Sprintf("s%d/w%d", sp.Shard, sp.Worker)
	}
	line := fmt.Sprintf("#%-6d %s %-8s %-12s %-6s reserve=%-10s queue=%-10s dispatch=%-10s run=%s",
		sp.ID,
		time.Unix(0, sp.AtNS).Format("15:04:05.000"),
		sp.Kind, sp.Who, place,
		time.Duration(sp.ReserveNS), time.Duration(sp.QueueNS),
		time.Duration(sp.DispatchNS), time.Duration(sp.RunNS))
	if sp.Err != "" {
		line += "  err=" + sp.Err
	}
	return line
}
