package main

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/rt"
	"repro/internal/rt/audit"
	"repro/internal/ticket"
)

// startBackend runs a real dispatcher — tracer and auditor wired, two
// classes, 16 completed jobs closing two 8-draw audit windows — and
// serves the three endpoints top and trace consume, shaped exactly
// like lotteryd's.
func startBackend(t *testing.T) *httptest.Server {
	t.Helper()
	reg := metrics.NewRegistry()
	tr := audit.NewTracer(audit.TracerConfig{Rate: 1, Capacity: 256, Seed: 1, Metrics: reg})
	aud := audit.New(audit.Config{WindowDraws: 8, Tol: 100, Metrics: reg})
	d := rt.New(rt.Config{
		Workers: 2, Shards: 1, QueueCap: 256, Seed: 42,
		Metrics: reg, Tracer: tr, Audit: aud,
	})
	t.Cleanup(func() { d.Close() })

	gold, err := d.NewClient("gold", ticket.Amount(2))
	if err != nil {
		t.Fatal(err)
	}
	bronze, err := d.NewClient("bronze", ticket.Amount(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		c := gold
		if i%2 == 0 {
			c = bronze
		}
		task, err := c.Submit(func() {})
		if err != nil {
			t.Fatal(err)
		}
		<-task.Done()
	}

	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.HandleFunc("/debug/fairness", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(aud.Report())
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		n, _ := strconv.Atoi(r.URL.Query().Get("n"))
		after, _ := strconv.ParseUint(r.URL.Query().Get("after"), 10, 64)
		spans, missed := tr.Spans(n, after)
		last := after
		if len(spans) > 0 {
			last = spans[len(spans)-1].ID
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Header().Set("X-Trace-Last-ID", strconv.FormatUint(last, 10))
		w.Header().Set("X-Trace-Missed", strconv.FormatUint(missed, 10))
		enc := json.NewEncoder(w)
		for i := range spans {
			_ = enc.Encode(&spans[i])
		}
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func TestTopOnce(t *testing.T) {
	srv := startBackend(t)
	var buf strings.Builder
	if err := runTop([]string{"-addr", srv.URL, "-once"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "\033[2J") {
		t.Error("-once must not clear the screen")
	}
	for _, want := range []string{
		"audit window 2", "draws=8", "fair",
		"TENANT", "SHARE", "EXPECT", "P99",
		"gold", "bronze", "66.7%", "33.3%",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("top output missing %q:\n%s", want, out)
		}
	}
	// Both tenant rows present, each once.
	if n := strings.Count(out, "\ngold"); n != 1 {
		t.Errorf("gold appears in %d rows:\n%s", n, out)
	}
}

// TestTopWithoutAudit: a daemon with the audit disabled still renders
// a table from /metrics alone.
func TestTopWithoutAudit(t *testing.T) {
	srv := startBackend(t)
	mux := http.NewServeMux()
	mux.Handle("/metrics", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		resp, err := http.Get(srv.URL + "/metrics")
		if err != nil {
			t.Error(err)
			return
		}
		defer resp.Body.Close()
		w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
		_, _ = io.Copy(w, resp.Body)
	}))
	noAudit := httptest.NewServer(mux) // no /debug/fairness route: 404
	defer noAudit.Close()

	var buf strings.Builder
	if err := runTop([]string{"-addr", noAudit.URL, "-once"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "audit: unavailable") {
		t.Errorf("missing audit-unavailable note:\n%s", out)
	}
	if !strings.Contains(out, "gold") || !strings.Contains(out, "bronze") {
		t.Errorf("metrics-only table missing tenants:\n%s", out)
	}
}

func TestTraceTail(t *testing.T) {
	srv := startBackend(t)
	var buf strings.Builder
	if err := runTrace([]string{"-addr", srv.URL, "-n", "5"}, &buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d trace lines, want 5:\n%s", len(lines), buf.String())
	}
	for _, line := range lines {
		if !strings.Contains(line, "complete") || !strings.Contains(line, "run=") {
			t.Errorf("unexpected trace line: %s", line)
		}
		if !strings.Contains(line, "s0/w") {
			t.Errorf("trace line missing shard/worker placement: %s", line)
		}
	}

	// All 16 spans when unlimited.
	buf.Reset()
	if err := runTrace([]string{"-addr", srv.URL, "-n", "0"}, &buf); err != nil {
		t.Fatal(err)
	}
	if n := len(strings.Split(strings.TrimSpace(buf.String()), "\n")); n != 16 {
		t.Errorf("unlimited tail returned %d lines, want 16", n)
	}
}

func TestTraceDisabled(t *testing.T) {
	mux := http.NewServeMux() // no /debug/trace: 404
	srv := httptest.NewServer(mux)
	defer srv.Close()
	var buf strings.Builder
	if err := runTrace([]string{"-addr", srv.URL, "-n", "5"}, &buf); err == nil {
		t.Fatal("runTrace succeeded against a daemon without tracing")
	}
}

func TestParsePromText(t *testing.T) {
	text := `# HELP x_total doc
# TYPE x_total counter
x_total{a="1",b="q\"uo\\te\n"} 3
x_total{a="2"} 4.5
plain 7
hist_bucket{t="g",le="0.5"} 2
hist_bucket{t="g",le="1"} 3
hist_bucket{t="g",le="+Inf"} 4
`
	p, err := parsePromText(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(p["x_total"]) != 2 {
		t.Fatalf("x_total samples: %v", p["x_total"])
	}
	if got := p["x_total"][0].labels["b"]; got != "q\"uo\\te\n" {
		t.Errorf("escaped label = %q", got)
	}
	if p["plain"][0].value != 7 {
		t.Errorf("plain = %v", p["plain"])
	}
	byA := p.sumBy("x_total", "a")
	if byA["1"] != 3 || byA["2"] != 4.5 {
		t.Errorf("sumBy = %v", byA)
	}

	if q, ok := p.quantile("hist", "t", "g", 0.5); !ok || q != 0.5 {
		t.Errorf("p50 = %v, %v; want 0.5", q, ok)
	}
	if q, ok := p.quantile("hist", "t", "g", 0.75); !ok || q != 1 {
		t.Errorf("p75 = %v, %v; want 1", q, ok)
	}
	if q, ok := p.quantile("hist", "t", "g", 0.99); !ok || !math.IsInf(q, 1) {
		t.Errorf("p99 = %v, %v; want +Inf", q, ok)
	}
	if _, ok := p.quantile("hist", "t", "missing", 0.5); ok {
		t.Error("quantile of an absent series reported ok")
	}

	for _, bad := range []string{
		"noval\n",
		`x{a="1" 2` + "\n",
		`x{a="unterminated} 2` + "\n",
		"x{a=\"1\"} notafloat\n",
	} {
		if _, err := parsePromText(strings.NewReader(bad)); err == nil {
			t.Errorf("parsePromText accepted %q", bad)
		}
	}
}
