package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"text/tabwriter"
	"time"
)

// fairnessReport mirrors lotteryd's /debug/fairness JSON (the audit
// package's Report); only the fields the table renders are decoded.
type fairnessReport struct {
	Window    uint64  `json:"window"`
	Draws     uint64  `json:"draws"`
	ChiSquare float64 `json:"chi_square"`
	MaxRelErr float64 `json:"max_rel_err"`
	Drifted   bool    `json:"drifted"`
	Streak    int     `json:"drift_streak"`
	Tenants   []struct {
		Name     string  `json:"name"`
		Tickets  float64 `json:"tickets"`
		Expected float64 `json:"expected_share"`
		Observed float64 `json:"observed_share"`
		RelErr   float64 `json:"rel_err"`
		Observd  uint64  `json:"dispatched"`
		Shed     uint64  `json:"shed"`
		Excluded bool    `json:"excluded"`
		Reason   string  `json:"reason"`
	} `json:"tenants"`
}

// runTop implements `lotteryctl top`: a live per-class table joining
// the daemon's /metrics families (backlog, wait quantiles, lifetime
// dispatch counts) with the fairness audit's last closed window
// (expected vs observed share, drift verdict).
func runTop(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("lotteryctl top", flag.ContinueOnError)
	addr := fs.String("addr", "http://127.0.0.1:8080", "lotteryd base URL")
	once := fs.Bool("once", false, "render a single frame and exit")
	interval := fs.Duration("interval", 2*time.Second, "refresh interval")
	if err := fs.Parse(args); err != nil {
		return err
	}
	for {
		frame, err := topFrame(strings.TrimSuffix(*addr, "/"))
		if err != nil {
			return err
		}
		if !*once {
			fmt.Fprint(out, "\033[2J\033[H") // clear, home
		}
		fmt.Fprint(out, frame)
		if *once {
			return nil
		}
		time.Sleep(*interval)
	}
}

func topFrame(base string) (string, error) {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("%s/metrics: %s", base, resp.Status)
	}
	prom, err := parsePromText(resp.Body)
	if err != nil {
		return "", err
	}

	// The audit is optional (-audit-window 0): without it the table
	// still renders from /metrics, with the share columns blank.
	var rep *fairnessReport
	if fresp, err := http.Get(base + "/debug/fairness"); err == nil {
		if fresp.StatusCode == http.StatusOK {
			rep = new(fairnessReport)
			if err := json.NewDecoder(fresp.Body).Decode(rep); err != nil {
				fresp.Body.Close()
				return "", fmt.Errorf("%s/debug/fairness: %v", base, err)
			}
		}
		fresp.Body.Close()
	}

	dispatched := prom.sumBy("rt_client_dispatched_total", "tenant")
	backlog := prom.sumBy("rt_client_queue_depth", "tenant")
	shedTotal := prom.sumBy("rt_client_shed_total", "tenant")

	names := make(map[string]bool)
	for name := range dispatched {
		names[name] = true
	}
	if rep != nil {
		for _, tn := range rep.Tenants {
			names[tn.Name] = true
		}
	}
	ordered := make([]string, 0, len(names))
	for name := range names {
		ordered = append(ordered, name)
	}
	sort.Strings(ordered)

	var b strings.Builder
	fmt.Fprintf(&b, "lotteryd %s  workers=%.0f pending=%.0f dispatched=%.0f\n",
		base, sum(prom["rt_workers"]), sum(prom["rt_pending_tasks"]), sum(prom["rt_dispatched_total"]))
	if rep != nil {
		verdict := "fair"
		if rep.Drifted {
			verdict = fmt.Sprintf("DRIFTED (streak %d)", rep.Streak)
		}
		fmt.Fprintf(&b, "audit window %d  draws=%d  max_rel_err=%.3f  chi=%.2f  %s\n",
			rep.Window, rep.Draws, rep.MaxRelErr, rep.ChiSquare, verdict)
	} else {
		b.WriteString("audit: unavailable (-audit-window 0?)\n")
	}

	tw := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "TENANT\tTICKETS\tSHARE\tEXPECT\tRELERR\tDISP\tSHED\tBACKLOG\tP50\tP99")
	for _, name := range ordered {
		share, expect, relerr, windisp := "-", "-", "-", "-"
		tickets := "-"
		if rep != nil {
			for _, tn := range rep.Tenants {
				if tn.Name != name {
					continue
				}
				tickets = fmt.Sprintf("%.0f", tn.Tickets)
				windisp = fmt.Sprint(tn.Observd)
				if tn.Excluded {
					share = "excl:" + tn.Reason
				} else {
					share = fmt.Sprintf("%.1f%%", 100*tn.Observed)
					expect = fmt.Sprintf("%.1f%%", 100*tn.Expected)
					relerr = fmt.Sprintf("%.3f", tn.RelErr)
				}
			}
		}
		p50 := quantileCell(prom, name, 0.50)
		p99 := quantileCell(prom, name, 0.99)
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%s\t%.0f\t%.0f\t%s\t%s\n",
			name, tickets, share, expect, relerr, windisp,
			shedTotal[name], backlog[name], p50, p99)
	}
	tw.Flush()
	return b.String(), nil
}

func quantileCell(prom promText, tenant string, q float64) string {
	le, ok := prom.quantile("rt_client_wait_seconds", "tenant", tenant, q)
	if !ok {
		return "-"
	}
	if math.IsInf(le, 1) {
		return ">top" // beyond the histogram's last finite bucket
	}
	return "<" + time.Duration(le*float64(time.Second)).Round(time.Microsecond).String()
}

func sum(samples []promSample) float64 {
	var t float64
	for _, s := range samples {
		t += s.value
	}
	return t
}
