// Command lotteryctl inspects ticket currency graphs — the analog of
// the paper's user-level commands (mktkt, mkcur, fund, lstkt; §4.7),
// driven by a declarative JSON spec instead of one syscall-wrapper
// command per operation — and observes a running lotteryd daemon.
//
// Usage:
//
//	lotteryctl -example          # print the paper's Figure 3 as a spec
//	lotteryctl -eval graph.json  # build the graph, print base values
//	lotteryctl -eval -           # read the spec from stdin
//
//	lotteryctl top [-addr URL] [-once] [-interval 2s]
//	    live per-class table joining /metrics (backlog, wait
//	    quantiles) with /debug/fairness (expected vs observed share,
//	    drift verdict)
//	lotteryctl trace [-addr URL] [-n 20] [-follow] [-interval 1s]
//	    tail the daemon's sampled task spans from /debug/trace
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/sim"
	"repro/internal/ticket"
	"repro/internal/trace"
)

// fig3Spec is the paper's Figure 3 currency graph as a spec.
const fig3Spec = `{
  "currencies": [
    {"name": "alice", "owner": "alice"},
    {"name": "bob",   "owner": "bob"},
    {"name": "task1", "owner": "alice"},
    {"name": "task2", "owner": "alice"},
    {"name": "task3", "owner": "bob"}
  ],
  "holders": ["thread1", "thread2", "thread3", "thread4"],
  "tickets": [
    {"currency": "base",  "amount": 1000, "to": "alice"},
    {"currency": "base",  "amount": 2000, "to": "bob"},
    {"currency": "alice", "amount": 100,  "to": "task1"},
    {"currency": "alice", "amount": 200,  "to": "task2"},
    {"currency": "bob",   "amount": 100,  "to": "task3"},
    {"currency": "task1", "amount": 100,  "to": "thread1"},
    {"currency": "task2", "amount": 200,  "to": "thread2"},
    {"currency": "task2", "amount": 300,  "to": "thread3"},
    {"currency": "task3", "amount": 100,  "to": "thread4"}
  ],
  "active": ["thread2", "thread3", "thread4"]
}
`

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "top":
			if err := runTop(os.Args[2:], os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "lotteryctl top:", err)
				os.Exit(1)
			}
			return
		case "trace":
			if err := runTrace(os.Args[2:], os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "lotteryctl trace:", err)
				os.Exit(1)
			}
			return
		}
	}
	var (
		evalPath = flag.String("eval", "", "path to a graph spec JSON ('-' for stdin)")
		example  = flag.Bool("example", false, "print the paper's Figure 3 graph spec")
		simPath  = flag.String("simulate", "", "build the spec, run its active holders as compute-bound threads, report CPU shares (fundx analog)")
		simFor   = flag.Duration("for", 60*time.Second, "virtual duration for -simulate")
		seed     = flag.Uint("seed", 1, "PRNG seed for -simulate")
		doTrace  = flag.Bool("trace", false, "with -simulate: print the last scheduler events and dispatch latencies")
	)
	flag.Parse()

	switch {
	case *example:
		fmt.Print(fig3Spec)
	case *evalPath != "":
		if err := eval(*evalPath); err != nil {
			fmt.Fprintln(os.Stderr, "lotteryctl:", err)
			os.Exit(1)
		}
	case *simPath != "":
		if err := simulate(*simPath, *simFor, uint32(*seed), *doTrace); err != nil {
			fmt.Fprintln(os.Stderr, "lotteryctl:", err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// simulate is the fundx analog: it grafts the spec onto a live
// kernel, runs every *active* holder as a compute-bound thread with
// the funding the spec gives it, and reports the CPU shares the
// lottery delivered.
func simulate(path string, dur time.Duration, seed uint32, doTrace bool) error {
	spec, err := loadSpec(path)
	if err != nil {
		return err
	}
	sys := core.NewSystem(core.WithSeed(seed))
	defer sys.Shutdown()
	var rec *trace.Recorder
	if doTrace {
		rec = trace.NewRecorder(20)
		sys.SetTracer(rec)
	}
	g, err := spec.BuildInto(sys.Tickets())
	if err != nil {
		return err
	}
	type entry struct {
		name string
		th   *kernel.Thread
	}
	var entries []entry
	for _, name := range g.SortedHolderNames() {
		h := g.HolderS[name]
		if !h.Active() {
			continue
		}
		th := sys.Spawn(name, func(ctx *kernel.Ctx) {
			for {
				ctx.Compute(10 * sim.Millisecond)
			}
		})
		// Move the spec holder's funding onto the thread.
		for _, tk := range h.Backing() {
			if err := tk.Retarget(th.Holder()); err != nil {
				return err
			}
		}
		entries = append(entries, entry{name, th})
	}
	if len(entries) == 0 {
		return fmt.Errorf("no active holders in spec")
	}
	sys.RunFor(dur)
	fmt.Printf("CPU shares after %v under lottery scheduling (seed %d):\n", dur, seed)
	var total float64
	for _, e := range entries {
		total += e.th.CPUTime().Seconds()
	}
	for _, e := range entries {
		sec := e.th.CPUTime().Seconds()
		fmt.Printf("  %-12s %8.2fs  %5.1f%%  (funding %.1f base units)\n",
			e.name, sec, 100*sec/total, e.th.Holder().Value())
	}
	if rec != nil {
		fmt.Printf("last scheduler events (%d total recorded):\n", rec.Total())
		fmt.Print(rec.Format(20))
	}
	return nil
}

func loadSpec(path string) (*ticket.GraphSpec, error) {
	var data []byte
	var err error
	if path == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		return nil, err
	}
	return ticket.ParseGraphSpec(data)
}

func eval(path string) error {
	spec, err := loadSpec(path)
	if err != nil {
		return err
	}
	g, err := spec.Build()
	if err != nil {
		return err
	}
	fmt.Print(g.System.DumpGraph())
	fmt.Println("holder values (base units):")
	for _, name := range g.SortedHolderNames() {
		h := g.HolderS[name]
		state := "idle"
		if h.Active() {
			state = "active"
		}
		fmt.Printf("  %-12s %10.1f (%s)\n", name, h.Value(), state)
	}
	return nil
}
