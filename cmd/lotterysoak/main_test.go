package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeDaemon mimics the slice of lotteryd the harness talks to: /work
// counts hits per class, /snapshot reports those counts as dispatch
// counters, /overload replays a canned status. Entitled shares either
// mirror the achieved split (mirror=true: conformance trivially
// holds) or come from the fixed map.
type fakeDaemon struct {
	mu       sync.Mutex
	hits     map[string]uint64
	mirror   bool
	entitled map[string]float64
	overload *overloadStatus // nil => 404
	work     func(w http.ResponseWriter) bool
}

func (f *fakeDaemon) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/work", func(w http.ResponseWriter, r *http.Request) {
		if f.work != nil {
			f.mu.Lock()
			done := f.work(w)
			f.mu.Unlock()
			if done {
				return
			}
		}
		class := r.URL.Query().Get("class")
		f.mu.Lock()
		f.hits[class]++
		f.mu.Unlock()
		fmt.Fprint(w, "{}")
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		defer f.mu.Unlock()
		var total uint64
		for _, n := range f.hits {
			total += n
		}
		type client struct {
			Name          string  `json:"name"`
			Dispatched    uint64  `json:"dispatched"`
			EntitledShare float64 `json:"entitled_share"`
		}
		out := struct {
			Dispatched uint64   `json:"dispatched"`
			Clients    []client `json:"clients"`
		}{Dispatched: total}
		for name, n := range f.hits {
			share := f.entitled[name]
			if f.mirror && total > 0 {
				share = float64(n) / float64(total)
			}
			out.Clients = append(out.Clients, client{Name: name, Dispatched: n, EntitledShare: share})
		}
		json.NewEncoder(w).Encode(out)
	})
	mux.HandleFunc("/overload", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		defer f.mu.Unlock()
		if f.overload == nil {
			http.Error(w, "overload control disabled", http.StatusNotFound)
			return
		}
		json.NewEncoder(w).Encode(f.overload)
	})
	return mux
}

func newFake(classes ...string) *fakeDaemon {
	f := &fakeDaemon{hits: map[string]uint64{}, mirror: true, entitled: map[string]float64{}}
	for _, c := range classes {
		f.hits[c] = 0 // classes appear in /snapshot even before traffic
	}
	return f
}

func soak(t *testing.T, f *fakeDaemon, args ...string) (string, error) {
	t.Helper()
	srv := httptest.NewServer(f.handler())
	defer srv.Close()
	var buf bytes.Buffer
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	err := run(ctx, append([]string{"-target", srv.URL}, args...), &buf)
	return buf.String(), err
}

func TestSoakConformancePass(t *testing.T) {
	f := newFake("gold", "bronze")
	out, err := soak(t, f,
		"-duration", "400ms", "-rates", "gold=300,bronze=150", "-conformance", "0.05")
	if err != nil {
		t.Fatalf("soak failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "PASS") {
		t.Fatalf("no PASS in report:\n%s", out)
	}
}

func TestSoakConformanceFailure(t *testing.T) {
	f := newFake("gold", "bronze")
	f.mirror = false
	// Entitlements nowhere near any achievable split.
	f.entitled = map[string]float64{"gold": 0.99, "bronze": 0.01}
	out, err := soak(t, f,
		"-duration", "300ms", "-rates", "gold=100,bronze=100", "-conformance", "0.05")
	if !errors.Is(err, errAssert) {
		t.Fatalf("want errAssert, got %v\n%s", err, out)
	}
	if !strings.Contains(out, "FAIL") {
		t.Fatalf("no FAIL in report:\n%s", out)
	}
}

func TestSoakOverloadAssertions(t *testing.T) {
	f := newFake("gold", "bronze")
	f.overload = &overloadStatus{Shed: 100}
	f.overload.Tenants = []struct {
		Name      string        `json:"name"`
		TargetP99 time.Duration `json:"target_p99_ns"`
		WindowP99 time.Duration `json:"window_p99_ns"`
		Factor    float64       `json:"factor"`
		Shed      uint64        `json:"shed"`
		OverShare float64       `json:"over_share"`
	}{
		{Name: "gold", TargetP99: 50 * time.Millisecond, WindowP99: 10 * time.Millisecond, Factor: 1.5, Shed: 5, OverShare: 0.5},
		{Name: "bronze", WindowP99: time.Second, Factor: 1, Shed: 95, OverShare: 3},
	}
	// 95% of sheds from the over-share class, gold p99 under bound: pass.
	out, err := soak(t, f, "-duration", "300ms", "-rates", "gold=100,bronze=100",
		"-p99max", "gold=50ms", "-shedfrac", "0.8")
	if err != nil {
		t.Fatalf("soak failed: %v\n%s", err, out)
	}
	// Tighten the p99 bound below the reported window p99: fail.
	out, err = soak(t, f, "-duration", "300ms", "-rates", "gold=100,bronze=100",
		"-p99max", "gold=1ms")
	if !errors.Is(err, errAssert) {
		t.Fatalf("want errAssert for p99 bound, got %v\n%s", err, out)
	}
	// Demand a shed-origin fraction the split cannot meet: fail.
	f.overload.Tenants[0].Shed, f.overload.Tenants[1].Shed = 95, 5
	out, err = soak(t, f, "-duration", "300ms", "-rates", "gold=100,bronze=100",
		"-shedfrac", "0.8")
	if !errors.Is(err, errAssert) {
		t.Fatalf("want errAssert for shed origin, got %v\n%s", err, out)
	}
}

func TestSoakNoOverloadEndpoint(t *testing.T) {
	f := newFake("gold")
	// Report-only run against a daemon without a controller: fine.
	if out, err := soak(t, f, "-duration", "200ms", "-rates", "gold=100"); err != nil {
		t.Fatalf("report-only soak failed: %v\n%s", err, out)
	}
	// But p99/shed assertions cannot be judged without /overload.
	if _, err := soak(t, f, "-duration", "200ms", "-rates", "gold=100",
		"-p99max", "gold=1ms"); !errors.Is(err, errAssert) {
		t.Fatalf("want errAssert without /overload, got %v", err)
	}
}

func TestSoakRejectionsCounted(t *testing.T) {
	f := newFake("gold")
	n := 0
	f.work = func(w http.ResponseWriter) bool {
		n++
		if n%2 == 0 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "class queue full", http.StatusServiceUnavailable)
			return true
		}
		return false
	}
	out, err := soak(t, f, "-duration", "300ms", "-rates", "gold=200")
	if err != nil {
		t.Fatalf("soak failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "503") {
		t.Fatalf("report lacks 503 column:\n%s", out)
	}
}

func TestSoakBadConfig(t *testing.T) {
	cases := [][]string{
		{},                          // no -rates
		{"-rates", "gold=0"},        // zero rate
		{"-rates", "gold=x"},        // junk rate
		{"-rates", "gold=1,gold=2"}, // duplicate
		{"-rates", "gold=1", "-burst", "nope=2:1s"},           // burst names unknown class
		{"-rates", "gold=1", "-burst", "gold=1:1s"},           // multiplier must exceed 1
		{"-rates", "gold=1", "-p99max", "gold=0s"},            // non-positive bound
		{"-rates", "gold=1", "-duration", "0s"},               // zero duration
		{"-rates", "gold=1", "-target", "http://127.0.0.1:1"}, // nothing listening
	}
	for _, args := range cases {
		var buf bytes.Buffer
		err := run(context.Background(), args, &buf)
		if err == nil || errors.Is(err, errAssert) {
			t.Errorf("run(%v) = %v, want config error", args, err)
		}
	}
}

func TestParseBurst(t *testing.T) {
	class, mult, period, err := parseBurst("bronze=5:2s")
	if err != nil || class != "bronze" || mult != 5 || period != 2*time.Second {
		t.Fatalf("parseBurst: %q %v %v %v", class, mult, period, err)
	}
	if _, _, _, err := parseBurst(""); err != nil {
		t.Fatalf("empty burst spec rejected: %v", err)
	}
}

func TestSoakSLOWaivesConformance(t *testing.T) {
	f := newFake("gold", "silver", "bronze")
	f.mirror = false
	// gold's entitlement is controller-managed and lopsided; silver and
	// bronze hold a 5:3 ticket ratio, matching the offered 500:300
	// rates once shares are renormalized over the steady pair.
	f.entitled = map[string]float64{"gold": 0.9, "silver": 0.0625, "bronze": 0.0375}
	f.overload = &overloadStatus{}
	f.overload.Tenants = []struct {
		Name      string        `json:"name"`
		TargetP99 time.Duration `json:"target_p99_ns"`
		WindowP99 time.Duration `json:"window_p99_ns"`
		Factor    float64       `json:"factor"`
		Shed      uint64        `json:"shed"`
		OverShare float64       `json:"over_share"`
	}{{Name: "gold", TargetP99: 50 * time.Millisecond, Factor: 4}}
	out, err := soak(t, f, "-duration", "600ms",
		"-rates", "gold=500,silver=500,bronze=300", "-conformance", "0.12")
	if err != nil {
		t.Fatalf("soak failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "slo-managed; conformance waived") {
		t.Fatalf("report does not mark the SLO-managed class:\n%s", out)
	}
}

func TestSoakChurnWaivesConformance(t *testing.T) {
	f := newFake("gold", "bronze")
	f.mirror = false
	f.entitled = map[string]float64{"gold": 0.5, "bronze": 0.5}
	// Churn period shorter than the run: both classes get silenced at
	// some point, so conformance is waived for both and the lopsided
	// entitlement cannot fail the run.
	out, err := soak(t, f, "-duration", "500ms", "-rates", "gold=200,bronze=200",
		"-churn", "100ms", "-conformance", "0.01")
	if err != nil {
		t.Fatalf("churned soak failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "churned") {
		t.Fatalf("report does not mark churned classes:\n%s", out)
	}
}
