package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"time"
)

// snapshot is the subset of lotteryd's /snapshot JSON the harness
// judges from.
type snapshot struct {
	Dispatched uint64 `json:"dispatched"`
	Pending    int    `json:"pending"`
	Shed       uint64 `json:"shed"`
	Clients    []struct {
		Name          string  `json:"name"`
		Dispatched    uint64  `json:"dispatched"`
		EntitledShare float64 `json:"entitled_share"`
		QueueDepth    int     `json:"queue_depth"`
	} `json:"clients"`
}

// overloadStatus is the subset of /overload the harness judges from.
type overloadStatus struct {
	Shed    uint64 `json:"shed"`
	Tenants []struct {
		Name      string        `json:"name"`
		TargetP99 time.Duration `json:"target_p99_ns"`
		WindowP99 time.Duration `json:"window_p99_ns"`
		Factor    float64       `json:"factor"`
		Shed      uint64        `json:"shed"`
		OverShare float64       `json:"over_share"`
	} `json:"tenants"`
}

func getJSON(ctx context.Context, httpc *http.Client, url string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := httpc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return fmt.Errorf("GET %s: %d: %s", url, resp.StatusCode, body)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

func getSnapshot(ctx context.Context, httpc *http.Client, base string) (*snapshot, error) {
	var s snapshot
	if err := getJSON(ctx, httpc, base+"/snapshot", &s); err != nil {
		return nil, err
	}
	return &s, nil
}

// getOverload returns nil (no error) when the daemon answers 404 —
// overload control simply is not enabled.
func getOverload(ctx context.Context, httpc *http.Client, base string) (*overloadStatus, error) {
	var o overloadStatus
	if err := getJSON(ctx, httpc, base+"/overload", &o); err != nil {
		return nil, err
	}
	return &o, nil
}

type judgeConfig struct {
	conformance float64
	p99bounds   map[string]time.Duration
	shedfrac    float64
}

// judge prints the per-class report and applies the configured
// assertions against the differenced snapshots and the controller
// status (ov may be nil when the daemon runs no controller).
func judge(out io.Writer, classes []*classState, before, after *snapshot, ov *overloadStatus, cfg judgeConfig) error {
	byName := func(s *snapshot, name string) (dispatched uint64, entitled float64, ok bool) {
		for _, c := range s.Clients {
			if c.Name == name {
				return c.Dispatched, c.EntitledShare, true
			}
		}
		return 0, 0, false
	}

	// Window totals count only the offered classes, so an idle class
	// outside the soak (or the daemon's own bookkeeping) cannot skew
	// the share denominators.
	var windowTotal uint64
	deltas := make(map[string]uint64, len(classes))
	for _, c := range classes {
		a, _, okA := byName(after, c.name)
		b, _, _ := byName(before, c.name)
		if !okA {
			return fmt.Errorf("%w: class %q missing from /snapshot", errConfig, c.name)
		}
		deltas[c.name] = a - b
		windowTotal += a - b
	}
	if windowTotal == 0 {
		return fmt.Errorf("%w: no dispatches observed over the soak window", errConfig)
	}

	// Conformance is the paper's metric: dispatch ratios among
	// *competing fixed-ticket* clients track their ticket ratios. Two
	// kinds of class are therefore waived and the shares renormalized
	// over the steady remainder: churned classes (their silence hands
	// capacity to the others, work-conservingly) and SLO-managed
	// classes (the controller deliberately moves their entitlement to
	// hold a latency target, so a static ticket-share comparison is
	// meaningless for them — their base funding staying put is what
	// the controller's own invariant check enforces).
	sloManaged := make(map[string]bool)
	if ov != nil {
		for _, ts := range ov.Tenants {
			if ts.TargetP99 > 0 {
				sloManaged[ts.Name] = true
			}
		}
	}
	entitleds := make(map[string]float64, len(classes))
	var steadyDisp uint64
	var steadyEnt float64
	steady := func(c *classState) bool { return !c.churned && !sloManaged[c.name] }
	for _, c := range classes {
		_, entitleds[c.name], _ = byName(after, c.name)
		if steady(c) {
			steadyDisp += deltas[c.name]
			steadyEnt += entitleds[c.name]
		}
	}

	var failures []string
	fmt.Fprintf(out, "%-10s %9s %9s %9s %9s %9s %10s %10s %7s\n",
		"class", "sent", "ok", "503", "failed", "skipped", "achieved", "entitled", "diff")
	for _, c := range classes {
		entitled := entitleds[c.name]
		achieved := float64(deltas[c.name]) / float64(windowTotal)
		note, diffCol := "", "      -"
		switch {
		case c.churned:
			note = " (churned; conformance waived)"
		case sloManaged[c.name]:
			note = " (slo-managed; conformance waived)"
		case steadyDisp > 0 && steadyEnt > 0:
			// Shares renormalized over the steady set, so waived
			// classes' redistributed capacity cannot skew the check.
			rAchieved := float64(deltas[c.name]) / float64(steadyDisp)
			rEntitled := entitled / steadyEnt
			diff := math.Abs(rAchieved - rEntitled)
			diffCol = fmt.Sprintf("%7.4f", diff)
			if cfg.conformance > 0 && diff > cfg.conformance {
				failures = append(failures, fmt.Sprintf(
					"class %s achieved steady share %.4f vs entitled %.4f (|diff| %.4f > %.4f)",
					c.name, rAchieved, rEntitled, diff, cfg.conformance))
			}
		}
		fmt.Fprintf(out, "%-10s %9d %9d %9d %9d %9d %9.4f %9.4f %s%s\n",
			c.name, c.sent.Load(), c.ok.Load(), c.rejected.Load(), c.failed.Load(),
			c.skipped.Load(), achieved, entitled, diffCol, note)
	}

	if ov != nil {
		fmt.Fprintf(out, "overload: %d jobs shed\n", ov.Shed)
		var overShed, totalShed uint64
		for _, ts := range ov.Tenants {
			totalShed += ts.Shed
			// Over-offered judged by the controller's own over-share
			// ratio (queued beyond entitlement) — the offered-load
			// view of the same misbehaviour the harness induced.
			if ts.OverShare > 1 {
				overShed += ts.Shed
			}
			line := fmt.Sprintf("  %-10s factor %.3f shed %d over-share %.2f",
				ts.Name, ts.Factor, ts.Shed, ts.OverShare)
			if ts.TargetP99 > 0 {
				line += fmt.Sprintf(" window-p99 %v (target %v)", ts.WindowP99, ts.TargetP99)
			}
			fmt.Fprintln(out, line)
			if bound, has := cfg.p99bounds[ts.Name]; has && ts.WindowP99 > bound {
				failures = append(failures, fmt.Sprintf(
					"class %s windowed p99 %v exceeds bound %v", ts.Name, ts.WindowP99, bound))
			}
		}
		// over_share holds the ratio from the controller's last victim
		// selection, so it attributes sheds to the classes that were
		// over share when shedding actually ran, not just at soak end.
		if cfg.shedfrac > 0 && totalShed > 0 {
			if frac := float64(overShed) / float64(totalShed); frac < cfg.shedfrac {
				failures = append(failures, fmt.Sprintf(
					"only %.2f of shed jobs came from over-share classes (want >= %.2f)",
					frac, cfg.shedfrac))
			}
		}
	} else {
		if len(cfg.p99bounds) > 0 || cfg.shedfrac > 0 {
			failures = append(failures,
				"p99/shed assertions configured but the daemon exposes no /overload controller")
		}
	}
	fmt.Fprintf(out, "backlog at end: %d queued\n", after.Pending)

	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(out, "FAIL:", f)
		}
		return fmt.Errorf("%w: %d violation(s)", errAssert, len(failures))
	}
	fmt.Fprintln(out, "PASS")
	return nil
}
