// Command lotterysoak is an open-loop overload harness for a running
// lotteryd: it offers each request class an independent Poisson
// arrival stream at a configured rate — deliberately beyond the
// daemon's capacity — layers bursts and class churn on top, and then
// judges the daemon's proportional-share and overload-control
// behaviour from its own /snapshot and /overload endpoints.
//
//	lotteryd -workers 2 -classes gold=500,bronze=100 -slo gold=50ms -shed 400 &
//	lotterysoak -target http://localhost:8080 -duration 30s \
//	    -rates gold=200,bronze=600 -busy 2ms -conformance 0.05
//
// Open-loop means arrivals do not wait for completions: a saturated
// daemon faces a growing backlog exactly as it would from independent
// clients, which is the regime the dispatcher's shedding and SLO
// inflation exist for. In-flight requests are bounded (-inflight) so
// the harness itself cannot exhaust sockets; arrivals past the bound
// are counted as skipped and the schedule marches on.
//
// Chaos layers:
//
//   - -burst class=mult:period doubles down on one class: for the
//     first half of every period its rate is multiplied by mult,
//     modeling a tenant whose load comes in waves.
//   - -churn period cycles one class at a time into silence for a
//     period, modeling tenants that come and go; share conformance
//     is only asserted over classes that were never churned.
//
// The measured window opens after -warmup (so queue-fill and
// feedback-convergence transients stay out of the evidence) and
// closes when the generators stop (so the dying backlog's drain does
// too). After the run the harness reports, per class: offered/
// completed/rejected counts, the dispatch share achieved over the
// window (differenced /snapshot dispatch counters) against the
// entitled share, and — when the daemon runs an overload controller — the
// inflation factor, windowed p99, and shed count. Assertions:
//
//   - -conformance t: every steady class's achieved share is within
//     absolute tolerance t of its entitled share. Shares are
//     renormalized over the steady classes: churned classes and
//     SLO-managed classes (whose entitlement the controller moves by
//     design) are reported but waived;
//   - -p99max class=bound: the class's controller-windowed p99 is
//     under bound at the end of the soak (converged, not transient);
//   - -shedfrac f: at least fraction f of all shed jobs came from
//     classes whose offered share exceeded their entitled share.
//
// Exit status: 0 all assertions held, 1 an assertion failed, 2 the
// harness could not run (bad flags, unreachable target).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/random"
)

// errConfig marks configuration/connectivity failures (exit 2, as
// distinct from assertion failures, exit 1).
var errConfig = errors.New("lotterysoak: cannot run")

// errAssert marks a failed behavioural assertion (exit 1).
var errAssert = errors.New("lotterysoak: assertion failed")

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	err := run(ctx, os.Args[1:], os.Stdout)
	stop()
	switch {
	case err == nil:
	case errors.Is(err, errAssert):
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	default:
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
}

// classState is one offered class's generator config and counters.
type classState struct {
	name string
	rate float64 // arrivals/sec before burst/churn shaping

	sent     atomic.Uint64 // requests actually issued
	ok       atomic.Uint64 // 200s
	rejected atomic.Uint64 // 503s (full queue or shed)
	failed   atomic.Uint64 // transport errors / unexpected statuses
	skipped  atomic.Uint64 // arrivals dropped at the in-flight bound
	churned  bool          // ever silenced by churn (exempt from conformance)
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("lotterysoak", flag.ContinueOnError)
	target := fs.String("target", "http://127.0.0.1:8080", "base URL of the lotteryd under test")
	duration := fs.Duration("duration", 20*time.Second, "measured soak length")
	warmup := fs.Duration("warmup", 0,
		"run load this long before the measured window opens (lets the daemon's feedback loops converge)")
	rates := fs.String("rates", "", "comma-separated class=arrivals-per-second offered load map")
	busy := fs.Duration("busy", 2*time.Millisecond, "per-job busy time sent to /work")
	inflight := fs.Int("inflight", 512, "max concurrent requests the harness keeps open")
	seed := fs.Uint("seed", 1, "arrival-schedule PRNG seed")
	burst := fs.String("burst", "", "class=mult:period square-wave burst on one class")
	churn := fs.Duration("churn", 0, "cycle one class at a time into silence for this period (0 disables)")
	conformance := fs.Float64("conformance", 0,
		"assert every steady class's achieved share within this absolute tolerance of entitled, renormalized over non-churned non-SLO classes (0 = report only)")
	p99max := fs.String("p99max", "", "comma-separated class=duration bounds on the controller's windowed p99")
	shedfrac := fs.Float64("shedfrac", 0,
		"assert at least this fraction of shed jobs came from over-offered classes (0 = report only)")
	if err := fs.Parse(args); err != nil {
		return fmt.Errorf("%w: %v", errConfig, err)
	}
	classes, err := parseRates(*rates)
	if err != nil {
		return fmt.Errorf("%w: %v", errConfig, err)
	}
	burstClass, burstMult, burstPeriod, err := parseBurst(*burst)
	if err != nil {
		return fmt.Errorf("%w: %v", errConfig, err)
	}
	if burstClass != "" && findClass(classes, burstClass) == nil {
		return fmt.Errorf("%w: -burst names unknown class %q", errConfig, burstClass)
	}
	p99bounds, err := parseP99Max(*p99max)
	if err != nil {
		return fmt.Errorf("%w: %v", errConfig, err)
	}
	if *duration <= 0 || *inflight <= 0 {
		return fmt.Errorf("%w: -duration and -inflight must be positive", errConfig)
	}
	if *warmup < 0 {
		return fmt.Errorf("%w: -warmup must be non-negative", errConfig)
	}

	httpc := &http.Client{} // no timeout: /work legitimately waits out the backlog
	base := strings.TrimRight(*target, "/")

	// Reachability check before spinning anything up.
	before, err := getSnapshot(ctx, httpc, base)
	if err != nil {
		return fmt.Errorf("%w: %v", errConfig, err)
	}

	fmt.Fprintf(out, "lotterysoak: %v against %s, classes %s (warmup %v)\n",
		*duration, base, *rates, *warmup)

	// Generators: one goroutine per class, each with its own seeded
	// Park-Miller stream, so the arrival schedule is reproducible for
	// a given -seed regardless of response timing.
	slots := make(chan struct{}, *inflight)
	var reqs sync.WaitGroup
	var gens sync.WaitGroup
	genCtx, genCancel := context.WithTimeout(ctx, *warmup+*duration)
	defer genCancel()
	start := time.Now()
	for i, c := range classes {
		gens.Add(1)
		src := random.NewPM(uint32(*seed) + uint32(i)*2654435761)
		go func(c *classState, src *random.PM) {
			defer gens.Done()
			for {
				rate := c.rate
				now := time.Since(start)
				if burstClass == c.name {
					// Square wave: first half of each period runs hot.
					if phase := now % burstPeriod; phase < burstPeriod/2 {
						rate *= burstMult
					}
				}
				if *churn > 0 {
					// Round-robin silence: in cycle k, class k%N is idle.
					cycle := int(now / *churn)
					if cycle%len(classes) == indexOf(classes, c.name) {
						c.churned = true
						rate = 0
					}
				}
				var wait time.Duration
				if rate > 0 {
					// Poisson arrivals: exponential interarrival times.
					u := src.Float64()
					wait = time.Duration(-math.Log(1-u) / rate * float64(time.Second))
				} else {
					wait = 10 * time.Millisecond // idle poll of the shaping state
				}
				t := time.NewTimer(wait)
				select {
				case <-genCtx.Done():
					t.Stop()
					return
				case <-t.C:
				}
				if rate == 0 {
					continue
				}
				select {
				case slots <- struct{}{}:
				default:
					c.skipped.Add(1)
					continue
				}
				reqs.Add(1)
				go func() {
					defer reqs.Done()
					defer func() { <-slots }()
					fire(ctx, httpc, base, c, *busy)
				}()
			}
		}(c, src)
	}
	// The measured window opens after the warmup (the ramp transient —
	// queues filling, the SLO feedback loop converging — would
	// otherwise be averaged into the conformance check) and closes the
	// moment the generators stop: dispatches from the dying backlog
	// are not proportional-share evidence (the last queue standing
	// gets everything, work-conservingly).
	if *warmup > 0 {
		select {
		case <-time.After(*warmup):
		case <-genCtx.Done():
		}
		if before, err = getSnapshot(ctx, httpc, base); err != nil {
			return fmt.Errorf("%w: %v", errConfig, err)
		}
	}
	gens.Wait()
	after, err := getSnapshot(ctx, httpc, base)
	if err != nil {
		return fmt.Errorf("%w: %v", errConfig, err)
	}
	reqs.Wait()

	// Let the daemon's controller take a final tick before reading
	// its converged status.
	select {
	case <-time.After(300 * time.Millisecond):
	case <-ctx.Done():
	}
	ov, _ := getOverload(ctx, httpc, base) // nil when the daemon runs no controller

	return judge(out, classes, before, after, ov, judgeConfig{
		conformance: *conformance,
		p99bounds:   p99bounds,
		shedfrac:    *shedfrac,
	})
}

// fire issues one /work request and buckets the outcome.
func fire(ctx context.Context, httpc *http.Client, base string, c *classState, busy time.Duration) {
	c.sent.Add(1)
	url := fmt.Sprintf("%s/work?class=%s&busy=%s", base, c.name, busy)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		c.failed.Add(1)
		return
	}
	resp, err := httpc.Do(req)
	if err != nil {
		c.failed.Add(1)
		return
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		c.ok.Add(1)
	case http.StatusServiceUnavailable:
		c.rejected.Add(1)
	default:
		c.failed.Add(1)
	}
}

func findClass(classes []*classState, name string) *classState {
	for _, c := range classes {
		if c.name == name {
			return c
		}
	}
	return nil
}

func indexOf(classes []*classState, name string) int {
	for i, c := range classes {
		if c.name == name {
			return i
		}
	}
	return -1
}

func parseRates(s string) ([]*classState, error) {
	if strings.TrimSpace(s) == "" {
		return nil, errors.New("-rates is required (class=arrivals-per-second,...)")
	}
	var out []*classState
	for _, part := range strings.Split(s, ",") {
		name, spec, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("bad rate spec %q (want class=rate)", part)
		}
		rate, err := strconv.ParseFloat(spec, 64)
		if err != nil || rate <= 0 {
			return nil, fmt.Errorf("bad rate in %q (want a positive number)", part)
		}
		if findClass(out, name) != nil {
			return nil, fmt.Errorf("duplicate class %q", name)
		}
		out = append(out, &classState{name: name, rate: rate})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out, nil
}

func parseBurst(s string) (class string, mult float64, period time.Duration, err error) {
	if strings.TrimSpace(s) == "" {
		return "", 0, 0, nil
	}
	name, spec, ok := strings.Cut(strings.TrimSpace(s), "=")
	if !ok || name == "" {
		return "", 0, 0, fmt.Errorf("bad burst spec %q (want class=mult:period)", s)
	}
	multStr, perStr, ok := strings.Cut(spec, ":")
	if !ok {
		return "", 0, 0, fmt.Errorf("bad burst spec %q (want class=mult:period)", s)
	}
	mult, err = strconv.ParseFloat(multStr, 64)
	if err != nil || mult <= 1 {
		return "", 0, 0, fmt.Errorf("bad burst multiplier in %q (want > 1)", s)
	}
	period, err = time.ParseDuration(perStr)
	if err != nil || period <= 0 {
		return "", 0, 0, fmt.Errorf("bad burst period in %q", s)
	}
	return name, mult, period, nil
}

func parseP99Max(s string) (map[string]time.Duration, error) {
	out := make(map[string]time.Duration)
	if strings.TrimSpace(s) == "" {
		return out, nil
	}
	for _, part := range strings.Split(s, ",") {
		name, spec, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("bad p99max spec %q (want class=duration)", part)
		}
		d, err := time.ParseDuration(spec)
		if err != nil || d <= 0 {
			return nil, fmt.Errorf("bad p99max duration in %q", part)
		}
		out[name] = d
	}
	return out, nil
}
