package main

import (
	"context"
	"encoding/json"
	"net/http"
	"sort"
	"strings"
	"testing"
)

// fieldPaths flattens a decoded JSON value into the sorted set of
// leaf-field paths: object keys join with ".", array elements collapse
// to "[]" (every element is walked, so heterogeneous entries — e.g. an
// excluded tenant's extra reason field — all contribute their paths).
func fieldPaths(v any) []string {
	set := make(map[string]bool)
	var walk func(prefix string, v any)
	walk = func(prefix string, v any) {
		switch x := v.(type) {
		case map[string]any:
			keys := make([]string, 0, len(x))
			for k := range x {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				p := k
				if prefix != "" {
					p = prefix + "." + k
				}
				walk(p, x[k])
			}
		case []any:
			for _, e := range x {
				walk(prefix+"[]", e)
			}
		default:
			set[prefix] = true
		}
	}
	walk("", v)
	out := make([]string, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

func TestFieldPathsHelper(t *testing.T) {
	var v any
	if err := json.Unmarshal([]byte(`{"a":1,"b":{"c":[{"d":2},{"d":3,"e":"x"}]},"f":[]}`), &v); err != nil {
		t.Fatal(err)
	}
	got := fieldPaths(v)
	want := []string{"a", "b.c[].d", "b.c[].e"}
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("fieldPaths = %v, want %v", got, want)
	}
}

// endpointSchemas is the golden: the exact leaf-field paths each JSON
// endpoint serves. A wire-format change must show up here as a
// deliberate diff, not leak out silently.
var endpointSchemas = map[string][]string{
	"/overload": {
		"backlog", "drain_rate", "high_watermark", "low_watermark",
		"retry_after_ns", "shed", "shedding",
		"tenants[].base_funding", "tenants[].factor", "tenants[].funding",
		"tenants[].name", "tenants[].over_share", "tenants[].queue_depth",
		"tenants[].shed", "tenants[].target_p99_ns", "tenants[].window_p99_ns",
		"ticks",
	},
	"/resources": {
		"dominance_slack", "io_burst_tokens", "io_grants",
		"io_rate_tokens_per_sec", "io_tokens", "io_waiters",
		"mem_capacity_bytes", "mem_free_bytes", "reclaims",
		"tenants[].cpu_seconds", "tenants[].cpu_share",
		"tenants[].dominant_resource", "tenants[].dominant_share",
		"tenants[].io_share", "tenants[].io_throttled",
		"tenants[].io_tokens_consumed", "tenants[].io_waiting",
		"tenants[].mem_reclaimed_bytes", "tenants[].mem_resident_bytes",
		"tenants[].mem_share", "tenants[].name", "tenants[].over_dominant",
		"tenants[].ticket_share", "tenants[].tickets", "tenants[].victimized",
	},
	"/debug/fairness": {
		"chi_square", "draws", "drift_streak", "drifted", "included",
		"max_rel_err",
		"tenants[].dispatched", "tenants[].excluded", "tenants[].expected_share",
		"tenants[].name", "tenants[].observed_share", "tenants[].rel_err",
		"tenants[].shed", "tenants[].tickets",
		"window",
	},
	"/debug/trace": {
		"at_ns", "dispatch_ns", "end_ns", "id", "kind", "queue_ns",
		"reserve_ns", "run_ns", "shard", "tenant", "who", "worker",
	},
}

// TestEndpointSchemas boots one daemon with every subsystem enabled —
// resource pools, overload control, tracing, a tiny audit window —
// drives enough work through it to populate each view, and pins the
// JSON field paths of the four structured endpoints against the
// golden above.
func TestEndpointSchemas(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	base, done := startDaemon(t, ctx,
		"-mem", "1048576", "-iorate", "1000000", "-ioburst", "65536",
		"-reserves", "gold=4096:64",
		"-slo", "gold=50ms", "-shed", "100", "-shedlow", "40",
		"-trace-sample", "1", "-audit-window", "8", "-audit-tol", "100",
	)
	defer func() { cancel(); <-done }()

	// 16 jobs with both classes and resource use: closes two audit
	// windows, records spans, touches mem and I/O ledgers.
	for i := 0; i < 16; i++ {
		class := "gold"
		if i%2 == 0 {
			class = "bronze"
		}
		url := "/work?class=" + class + "&busy=1ms"
		if class == "bronze" {
			url += "&mem=512&io=2"
		}
		if code, body := get(t, base+url); code != http.StatusOK {
			t.Fatalf("%s = %d: %s", url, code, body)
		}
	}

	for path, want := range map[string][]string{
		"/overload":       endpointSchemas["/overload"],
		"/resources":      endpointSchemas["/resources"],
		"/debug/fairness": endpointSchemas["/debug/fairness"],
	} {
		code, body := get(t, base+path)
		if code != http.StatusOK {
			t.Fatalf("%s = %d: %s", path, code, body)
		}
		var v any
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatalf("%s not JSON: %v\n%s", path, err, body)
		}
		if got := fieldPaths(v); strings.Join(got, "\n") != strings.Join(want, "\n") {
			t.Errorf("%s schema drifted:\n got:  %v\n want: %v", path, got, want)
		}
	}

	// /debug/trace is JSON lines: every span line must carry exactly
	// the golden fields (err/omitempty fields absent on success).
	code, body := get(t, base+"/debug/trace?n=4")
	if code != http.StatusOK {
		t.Fatalf("/debug/trace = %d: %s", code, body)
	}
	lines := ndjsonLines(body)
	if len(lines) != 4 {
		t.Fatalf("trace tail returned %d lines", len(lines))
	}
	for _, line := range lines {
		var v any
		if err := json.Unmarshal([]byte(line), &v); err != nil {
			t.Fatalf("span line not JSON: %v\n%s", err, line)
		}
		got := fieldPaths(v)
		want := endpointSchemas["/debug/trace"]
		if strings.Join(got, "\n") != strings.Join(want, "\n") {
			t.Errorf("/debug/trace schema drifted:\n got:  %v\n want: %v", got, want)
		}
	}
}
