// Command lotteryd demonstrates the real-time dispatcher as a tiny
// HTTP service: each request class is a currency-funded client of an
// rt.Dispatcher, so classes receive worker time in proportion to
// their ticket funding no matter how unbalanced the offered load.
//
//	lotteryd -addr :8080 -workers 2 -classes gold=500,silver=300,bronze=200
//
//	curl 'http://localhost:8080/work?class=gold&busy=5ms'   # do one job
//	curl 'http://localhost:8080/snapshot'                   # achieved vs entitled
//	curl 'http://localhost:8080/metrics'                    # Prometheus text format
//	curl 'http://localhost:8080/debug/events?n=20'          # recent dispatcher events
//	curl 'http://localhost:8080/debug/trace?n=20'           # sampled task spans (-trace-sample)
//	curl 'http://localhost:8080/debug/fairness'             # last fairness-audit window
//	curl 'http://localhost:8080/resources'                  # multi-resource ledger view
//
// /work enqueues a job for its class and blocks until a worker has
// run it; a class whose queue is full answers 503 (the dispatcher's
// Reject backpressure policy). The job is bound to the request
// context: a caller that disconnects while its job is still queued
// cancels it, reclaiming the queue slot without a worker ever
// touching it. /snapshot returns the dispatcher's atomic rt.Snapshot
// as JSON: per-class dispatch counts, achieved vs entitled share,
// cancellations, queue depth, and wait-latency percentiles.
//
// Multi-resource mode: -mem (memory pool bytes) and -iorate/-ioburst
// (I/O token bucket) attach a resource ledger to the dispatcher, so
// one class currency jointly funds CPU time, memory, and I/O
// bandwidth. -reserves gives each class a default per-job reserve
// ("gold=4096:128" holds 4096 bytes and spends 128 I/O tokens per
// job), which ?mem= and ?io= on /work override per request; reserves
// are acquired before the job is admitted (memory reclamation and
// token waits happen there, never on a worker) and released when it
// finishes. /resources returns the ledger's resource.Snapshot as
// JSON — per-tenant residency, tokens consumed, dominant shares,
// reclamations, and throttles — and answers 404 when no pool is
// configured.
//
// Overload control: -slo gives classes p99 wait-latency targets
// ("gold=50ms") that a feedback controller holds by inflating the
// class's ticket funding (bounded by -inflate) while the target is
// missed and burning the boost back once met; -shed sets the queued-
// backlog high watermark past which the controller evicts queued jobs
// by inverse lottery over the classes queued beyond their entitled
// share, draining to -shedlow. Shed jobs answer 503; while the
// backlog is past the watermark every 503 carries a Retry-After hint
// derived from the measured drain rate. /overload returns the
// controller's state as JSON (per-class inflation factors, windowed
// p99s, shed counts, over-share ratios) and answers 404 when neither
// -slo nor -shed is set.
//
// Observability: /metrics exposes the dispatcher's rt_* families
// (per-class dispatch/reject/cancel counters, queue depths,
// wait-latency histograms) plus per-endpoint http_requests_total and
// http_request_seconds, all from one metrics.Registry. /debug/events
// streams the most recent dispatcher lifecycle events as JSON lines
// (ring capacity set by -events; ?n= limits the tail, ?after= resumes
// from an event id; X-Events-Last-ID and X-Events-Dropped headers
// carry the polling cursor and the evicted-gap count). -pprof
// additionally mounts net/http/pprof under /debug/pprof/ — opt-in,
// since profiling endpoints should not be exposed by default.
//
// Tracing and the fairness audit: -trace-sample p samples a fraction
// p of jobs into per-task lifecycle spans — submit, reserve, queue,
// dispatch (shard, worker), run — retained in a bounded flight
// recorder (-trace-buf) and served as JSON lines at /debug/trace
// (?n= / ?after= as for events; X-Trace-Last-ID / X-Trace-Missed
// carry the cursor), with per-stage latency histograms in /metrics
// (trace_stage_seconds). -audit-window n closes a fairness-audit
// window every n dispatches, comparing each class's observed dispatch
// share against its ticket share; /debug/fairness returns the last
// closed window (expected vs observed shares, chi-square, drift
// streak) and audit_* gauges track it in /metrics. Classes the
// controller sheds or inflates are renormalized out of their windows,
// so overload control does not read as unfairness.
//
// On SIGINT/SIGTERM the daemon shuts down gracefully: the listener
// closes, in-flight requests finish, and the dispatcher drains its
// backlog, all bounded by -grace; a second deadline overrun discards
// still-queued jobs rather than hanging forever.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/metrics"
	"repro/internal/rt"
	"repro/internal/rt/audit"
	"repro/internal/rt/overload"
	"repro/internal/rt/resource"
	"repro/internal/ticket"
)

// errConfig marks flag/configuration errors, which exit 2 (usage)
// rather than 1 (runtime failure).
var errConfig = errors.New("lotteryd: bad configuration")

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, err)
		if errors.Is(err, errConfig) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

// run is the daemon body, factored out of main so tests can drive the
// full lifecycle: it serves until ctx is done (the signal path), then
// shuts the HTTP server and dispatcher down gracefully. If ready is
// non-nil the bound listen address is sent on it once serving.
func run(ctx context.Context, args []string, ready chan<- net.Addr) error {
	fs := flag.NewFlagSet("lotteryd", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	shards := fs.Int("shards", 0, "run-queue shards (0 = GOMAXPROCS)")
	queueCap := fs.Int("queue", 256, "per-class queue capacity")
	seed := fs.Uint("seed", 1, "lottery PRNG seed")
	slice := fs.Duration("slice", 0, "expected slice for compensation tickets (0 = off)")
	grace := fs.Duration("grace", 5*time.Second, "graceful shutdown deadline for in-flight requests and queued jobs")
	classes := fs.String("classes", "gold=500,silver=300,bronze=200",
		"comma-separated class=tickets funding map")
	events := fs.Int("events", 2048, "dispatcher event ring capacity for /debug/events (0 disables)")
	pprofOn := fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	memCap := fs.Int64("mem", 0, "memory pool capacity in bytes (0 disables the memory pool)")
	ioRate := fs.Float64("iorate", 0, "I/O token-bucket refill rate in tokens/sec (0 disables the I/O pool)")
	ioBurst := fs.Int64("ioburst", 0, "I/O token-bucket burst capacity (0 = rate)")
	reserves := fs.String("reserves", "",
		"comma-separated class=mem:io default per-job reserves (bytes held, tokens spent)")
	slo := fs.String("slo", "",
		"comma-separated class=duration p99 wait targets driving ticket inflation")
	shedHigh := fs.Int("shed", 0,
		"queued-backlog high watermark that starts inverse-lottery load shedding (0 disables)")
	shedLow := fs.Int("shedlow", 0,
		"backlog a shed drains down to (0 = half of -shed)")
	inflate := fs.Float64("inflate", 8, "cap on the SLO controller's funding inflation factor")
	traceSample := fs.Float64("trace-sample", 0,
		"task span sampling probability in [0, 1] for /debug/trace (0 disables tracing)")
	traceBuf := fs.Int("trace-buf", 4096, "span flight-recorder capacity")
	auditWindow := fs.Uint64("audit-window", 4096,
		"dispatches per fairness-audit window for /debug/fairness (0 disables the audit)")
	auditTol := fs.Float64("audit-tol", 0.10,
		"fairness-audit drift threshold (max relative share error per window)")
	lockfree := fs.Bool("lockfree", true,
		"use the lock-free submit/draw path (MPSC submit rings + RCU draw snapshots); disable to bisect against the mutex path")
	if err := fs.Parse(args); err != nil {
		return fmt.Errorf("%w: %v", errConfig, err)
	}
	if *events < 0 {
		return fmt.Errorf("%w: -events must be >= 0", errConfig)
	}
	if *traceSample < 0 || *traceSample > 1 {
		return fmt.Errorf("%w: -trace-sample must be in [0, 1]", errConfig)
	}
	if *traceBuf <= 0 {
		return fmt.Errorf("%w: -trace-buf must be positive", errConfig)
	}
	if *auditTol <= 0 {
		return fmt.Errorf("%w: -audit-tol must be positive", errConfig)
	}
	if *memCap < 0 || *ioRate < 0 || *ioBurst < 0 {
		return fmt.Errorf("%w: -mem, -iorate, and -ioburst must be >= 0", errConfig)
	}
	if *shedHigh < 0 || *shedLow < 0 {
		return fmt.Errorf("%w: -shed and -shedlow must be >= 0", errConfig)
	}
	if *shedLow > 0 && *shedLow >= *shedHigh {
		return fmt.Errorf("%w: -shedlow must be below -shed", errConfig)
	}
	if *inflate < 1 {
		return fmt.Errorf("%w: -inflate must be >= 1", errConfig)
	}

	funding, err := parseClasses(*classes)
	if err != nil {
		return fmt.Errorf("%w: %v", errConfig, err)
	}
	classRes, err := parseReserves(*reserves, funding)
	if err != nil {
		return fmt.Errorf("%w: %v", errConfig, err)
	}
	if len(classRes) > 0 && *memCap == 0 && *ioRate == 0 {
		return fmt.Errorf("%w: -reserves needs a resource pool (-mem or -iorate)", errConfig)
	}
	slos, err := parseSLOs(*slo, funding)
	if err != nil {
		return fmt.Errorf("%w: %v", errConfig, err)
	}

	reg := metrics.NewRegistry()
	var rec *rt.EventRecorder
	cfg := rt.Config{
		Workers:         *workers,
		Shards:          *shards,
		QueueCap:        *queueCap,
		Seed:            uint32(*seed),
		ExpectedSlice:   *slice,
		Metrics:         reg,
		DisableLockFree: !*lockfree,
	}
	var ledger *resource.Ledger
	if *memCap > 0 || *ioRate > 0 {
		// The ledger reports into the same registry as the dispatcher:
		// one /metrics scrape covers CPU scheduling, memory residency,
		// and I/O token flow.
		ledger = resource.NewLedger(resource.Config{
			MemCapacity: *memCap,
			IORate:      *ioRate,
			IOBurst:     *ioBurst,
			Seed:        uint32(*seed),
			Metrics:     reg,
		})
		cfg.Resources = ledger
	}
	if *events > 0 {
		rec = rt.NewEventRecorder(*events)
		cfg.Observer = rec
	}
	var tracer *audit.Tracer
	if *traceSample > 0 {
		tracer = audit.NewTracer(audit.TracerConfig{
			Rate:     *traceSample,
			Capacity: *traceBuf,
			Seed:     uint32(*seed),
			Metrics:  reg,
		})
		cfg.Tracer = tracer
	}
	var auditor *audit.Auditor
	if *auditWindow > 0 {
		auditor = audit.New(audit.Config{
			WindowDraws: *auditWindow,
			Tol:         *auditTol,
			Metrics:     reg,
		})
		cfg.Audit = auditor
	}
	d := rt.New(cfg)

	clients := make(map[string]*rt.Client, len(funding))
	names := make([]string, 0, len(funding))
	for name, amount := range funding {
		c, err := d.NewClient(name, amount, rt.WithOverflow(rt.Reject))
		if err != nil {
			_ = d.CloseTimeout(*grace)
			return err
		}
		clients[name] = c
		names = append(names, name)
	}
	sort.Strings(names)

	// The overload controller runs whenever a class has an SLO or a
	// shed watermark is set: every class registers (shedding needs the
	// full entitled-share picture), SLO-less classes with a zero
	// target.
	var ctrl *overload.Controller
	if len(slos) > 0 || *shedHigh > 0 {
		ctrl = overload.New(d, overload.Config{
			HighWatermark: *shedHigh,
			LowWatermark:  *shedLow,
			MaxInflation:  *inflate,
			Seed:          uint32(*seed),
		})
		for _, name := range names {
			c := clients[name]
			ctrl.Register(c.Tenant(), slos[name], c)
		}
		ctrl.Start()
	}
	// retryAfter derives the 503 backpressure hint: the controller's
	// drain-rate estimate while it reports one, else a flat second —
	// enough to desynchronize immediate re-tries without parking
	// well-behaved callers.
	retryAfter := func() string {
		if ctrl != nil {
			if hint := ctrl.RetryAfterHint(); hint > 0 {
				return strconv.Itoa(int((hint + time.Second - 1) / time.Second))
			}
		}
		return "1"
	}

	// Every endpoint below reports into the same registry the
	// dispatcher exports through, so one /metrics scrape covers both
	// scheduling behaviour and HTTP serving behaviour.
	httpReqs := reg.CounterVec("http_requests_total",
		"HTTP requests served, by endpoint and status code.", "path", "code")
	httpLat := reg.HistogramVec("http_request_seconds",
		"HTTP request latency in seconds, by endpoint.",
		metrics.ExpBuckets(1e-4, 4, 10), "path")

	mux := http.NewServeMux()
	handle := func(path string, h http.HandlerFunc) {
		lat := httpLat.With(path)
		mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
			start := time.Now()
			sw := &statusWriter{ResponseWriter: w}
			h(sw, r)
			code := sw.status
			if code == 0 {
				// Handler wrote no response (e.g. /work's caller-gone
				// paths); net/http sends an implicit 200.
				code = http.StatusOK
			}
			httpReqs.With(path, strconv.Itoa(code)).Inc()
			lat.Observe(time.Since(start).Seconds())
		})
	}
	handle("/work", func(w http.ResponseWriter, r *http.Request) {
		c, ok := clients[r.URL.Query().Get("class")]
		if !ok {
			http.Error(w, fmt.Sprintf("unknown class; have %s", strings.Join(names, ", ")),
				http.StatusBadRequest)
			return
		}
		busy := time.Millisecond
		if v := r.URL.Query().Get("busy"); v != "" {
			var err error
			if busy, err = time.ParseDuration(v); err != nil {
				http.Error(w, "bad busy duration: "+err.Error(), http.StatusBadRequest)
				return
			}
		}
		res := classRes[c.Name()]
		for _, q := range []struct {
			key string
			dst *int64
		}{{"mem", &res.MemBytes}, {"io", &res.IOTokens}} {
			if v := r.URL.Query().Get(q.key); v != "" {
				n, err := strconv.ParseInt(v, 10, 64)
				if err != nil || n < 0 {
					http.Error(w, "bad "+q.key+": want a non-negative integer", http.StatusBadRequest)
					return
				}
				*q.dst = n
			}
		}
		enqueued := time.Now()
		// The job rides the request context: a disconnected caller
		// cancels its still-queued job (and rolls back a reserve
		// acquisition it is blocked in) and frees the slot.
		task, err := c.SubmitReserve(r.Context(), func() { spin(busy) }, res)
		switch {
		case errors.Is(err, rt.ErrQueueFull):
			w.Header().Set("Retry-After", retryAfter())
			http.Error(w, "class queue full", http.StatusServiceUnavailable)
			return
		case errors.Is(err, rt.ErrNoResources),
			errors.Is(err, resource.ErrBadReserve),
			errors.Is(err, resource.ErrMemCapacity),
			errors.Is(err, resource.ErrIOCapacity):
			// The reserve can never be satisfied as configured — caller
			// error, not transient overload.
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			return // caller went away before the job was admitted
		case err != nil:
			w.Header().Set("Retry-After", retryAfter())
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		switch err := task.WaitCtx(r.Context()); {
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			return // caller went away; a queued job was cancelled with it
		case errors.Is(err, rt.ErrShed):
			w.Header().Set("Retry-After", retryAfter())
			http.Error(w, "job shed under overload", http.StatusServiceUnavailable)
			return
		case err != nil:
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, map[string]any{
			"class":    c.Name(),
			"busy":     busy.String(),
			"total_ms": float64(time.Since(enqueued).Microseconds()) / 1000,
		})
	})
	handle("/snapshot", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, d.Snapshot())
	})
	handle("/resources", func(w http.ResponseWriter, r *http.Request) {
		if ledger == nil {
			http.Error(w, "no resource pools configured (-mem / -iorate)", http.StatusNotFound)
			return
		}
		writeJSON(w, ledger.Snapshot())
	})
	handle("/overload", func(w http.ResponseWriter, r *http.Request) {
		if ctrl == nil {
			http.Error(w, "overload control disabled (-slo / -shed)", http.StatusNotFound)
			return
		}
		writeJSON(w, ctrl.Status())
	})
	metricsHandler := reg.Handler()
	handle("/metrics", func(w http.ResponseWriter, r *http.Request) {
		metricsHandler.ServeHTTP(w, r)
	})
	handle("/debug/events", func(w http.ResponseWriter, r *http.Request) {
		if rec == nil {
			http.Error(w, "event recording disabled (-events 0)", http.StatusNotFound)
			return
		}
		n, after, ok := tailParams(w, r)
		if !ok {
			return
		}
		evs, dropped := rec.EventsAfter(after)
		if n > 0 && len(evs) > n {
			evs = evs[len(evs)-n:]
		}
		last := after
		if len(evs) > 0 {
			last = evs[len(evs)-1].ID
		}
		// Headers before any body bytes: they carry the polling cursor.
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Header().Set("X-Events-Last-ID", strconv.FormatUint(last, 10))
		w.Header().Set("X-Events-Dropped", strconv.FormatUint(dropped, 10))
		enc := json.NewEncoder(w)
		for i := range evs {
			if err := enc.Encode(&evs[i]); err != nil {
				log.Printf("lotteryd: /debug/events write: %v", err)
				return
			}
		}
	})
	handle("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		if tracer == nil {
			http.Error(w, "tracing disabled (-trace-sample 0)", http.StatusNotFound)
			return
		}
		n, after, ok := tailParams(w, r)
		if !ok {
			return
		}
		spans, missed := tracer.Spans(n, after)
		last := after
		if len(spans) > 0 {
			last = spans[len(spans)-1].ID
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Header().Set("X-Trace-Last-ID", strconv.FormatUint(last, 10))
		w.Header().Set("X-Trace-Missed", strconv.FormatUint(missed, 10))
		enc := json.NewEncoder(w)
		for i := range spans {
			if err := enc.Encode(&spans[i]); err != nil {
				log.Printf("lotteryd: /debug/trace write: %v", err)
				return
			}
		}
	})
	handle("/debug/fairness", func(w http.ResponseWriter, r *http.Request) {
		if auditor == nil {
			http.Error(w, "fairness audit disabled (-audit-window 0)", http.StatusNotFound)
			return
		}
		writeJSON(w, auditor.Report())
	})
	if *pprofOn {
		// Explicit routes rather than a blank import: pprof stays off
		// the default mux and off this one unless asked for.
		handle("/debug/pprof/", pprof.Index)
		handle("/debug/pprof/cmdline", pprof.Cmdline)
		handle("/debug/pprof/profile", pprof.Profile)
		handle("/debug/pprof/symbol", pprof.Symbol)
		handle("/debug/pprof/trace", pprof.Trace)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		_ = d.CloseTimeout(*grace)
		return fmt.Errorf("lotteryd: listen: %w", err)
	}
	srv := &http.Server{
		Handler: mux,
		// No Read/WriteTimeout: /work legitimately blocks while its
		// job waits out the backlog. Header and idle timeouts still
		// bound dead connections.
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       60 * time.Second,
	}
	if ready != nil {
		ready <- ln.Addr()
	}
	log.Printf("lotteryd: %d workers, classes %s, listening on %s",
		d.Workers(), *classes, ln.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		// The server died under us; still drain bounded by the grace
		// deadline rather than hanging on a stuck backlog.
		if ctrl != nil {
			ctrl.Stop()
		}
		if cerr := d.CloseTimeout(*grace); cerr != nil {
			log.Printf("lotteryd: drain cut short, queued jobs discarded: %v", cerr)
		}
		return fmt.Errorf("lotteryd: serve: %w", err)
	case <-ctx.Done():
		log.Printf("lotteryd: shutdown signal; draining (grace %v)", *grace)
	}

	// Stop the overload controller before draining: a shed racing the
	// drain would bounce jobs the grace period could still finish.
	if ctrl != nil {
		ctrl.Stop()
	}

	// Stop accepting connections and let in-flight requests finish,
	// then drain the dispatcher's backlog — each bounded by the grace
	// deadline so a stuck queue cannot wedge shutdown.
	shutCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	shutErr := srv.Shutdown(shutCtx)
	if err := d.CloseTimeout(*grace); err != nil {
		log.Printf("lotteryd: drain cut short, queued jobs discarded: %v", err)
	}
	if shutErr != nil {
		return fmt.Errorf("lotteryd: shutdown: %w", shutErr)
	}
	log.Printf("lotteryd: drained cleanly")
	return nil
}

// spin busy-loops for roughly d, modeling CPU-bound work (sleeping
// would not contend for the worker pool in any interesting way).
func spin(d time.Duration) {
	for end := time.Now().Add(d); time.Now().Before(end); {
	}
}

func parseClasses(s string) (map[string]ticket.Amount, error) {
	out := make(map[string]ticket.Amount)
	for _, part := range strings.Split(s, ",") {
		name, amount, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("lotteryd: bad class spec %q (want name=tickets)", part)
		}
		var n ticket.Amount
		if _, err := fmt.Sscanf(amount, "%d", &n); err != nil || n <= 0 {
			return nil, fmt.Errorf("lotteryd: bad ticket amount in %q", part)
		}
		if _, dup := out[name]; dup {
			return nil, fmt.Errorf("lotteryd: duplicate class %q", name)
		}
		out[name] = n
	}
	if len(out) == 0 {
		return nil, errors.New("lotteryd: no classes configured")
	}
	return out, nil
}

// parseReserves parses the -reserves flag: "class=mem:io" pairs where
// mem is bytes held and io is tokens spent per job. Every named class
// must exist in the funding map; unnamed classes default to a zero
// reserve (plain CPU jobs).
func parseReserves(s string, funding map[string]ticket.Amount) (map[string]rt.Reserve, error) {
	out := make(map[string]rt.Reserve)
	if strings.TrimSpace(s) == "" {
		return out, nil
	}
	for _, part := range strings.Split(s, ",") {
		name, spec, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("lotteryd: bad reserve spec %q (want class=mem:io)", part)
		}
		if _, known := funding[name]; !known {
			return nil, fmt.Errorf("lotteryd: reserve for unknown class %q", name)
		}
		if _, dup := out[name]; dup {
			return nil, fmt.Errorf("lotteryd: duplicate reserve for class %q", name)
		}
		memStr, ioStr, ok := strings.Cut(spec, ":")
		if !ok {
			return nil, fmt.Errorf("lotteryd: bad reserve spec %q (want class=mem:io)", part)
		}
		mem, err := strconv.ParseInt(memStr, 10, 64)
		if err != nil || mem < 0 {
			return nil, fmt.Errorf("lotteryd: bad memory bytes in %q", part)
		}
		io, err := strconv.ParseInt(ioStr, 10, 64)
		if err != nil || io < 0 {
			return nil, fmt.Errorf("lotteryd: bad I/O tokens in %q", part)
		}
		out[name] = rt.Reserve{MemBytes: mem, IOTokens: io}
	}
	return out, nil
}

// parseSLOs parses the -slo flag: "class=duration" pairs naming the
// class's p99 wait target. Every named class must exist in the
// funding map; unnamed classes get no SLO (no inflation, but they
// still participate in shed accounting).
func parseSLOs(s string, funding map[string]ticket.Amount) (map[string]time.Duration, error) {
	out := make(map[string]time.Duration)
	if strings.TrimSpace(s) == "" {
		return out, nil
	}
	for _, part := range strings.Split(s, ",") {
		name, spec, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("lotteryd: bad SLO spec %q (want class=duration)", part)
		}
		if _, known := funding[name]; !known {
			return nil, fmt.Errorf("lotteryd: SLO for unknown class %q", name)
		}
		if _, dup := out[name]; dup {
			return nil, fmt.Errorf("lotteryd: duplicate SLO for class %q", name)
		}
		d, err := time.ParseDuration(spec)
		if err != nil || d <= 0 {
			return nil, fmt.Errorf("lotteryd: bad SLO duration in %q", part)
		}
		out[name] = d
	}
	return out, nil
}

// statusWriter records the status code a handler sends so the metrics
// middleware can label http_requests_total with it. A handler that
// never calls WriteHeader leaves status 0 (net/http's implicit 200).
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

// tailParams parses the shared ?n= / ?after= query parameters of the
// /debug/events and /debug/trace tails. On a malformed value it
// writes a 400 and reports ok=false.
func tailParams(w http.ResponseWriter, r *http.Request) (n int, after uint64, ok bool) {
	if v := r.URL.Query().Get("n"); v != "" {
		var err error
		if n, err = strconv.Atoi(v); err != nil || n < 0 {
			http.Error(w, "bad n: want a non-negative integer", http.StatusBadRequest)
			return 0, 0, false
		}
	}
	if v := r.URL.Query().Get("after"); v != "" {
		var err error
		if after, err = strconv.ParseUint(v, 10, 64); err != nil {
			http.Error(w, "bad after: want an event id", http.StatusBadRequest)
			return 0, 0, false
		}
	}
	return n, after, true
}

// writeJSON encodes v into a buffer first so an encoding failure can
// still become a clean 500 instead of a half-written 200 body, and so
// Content-Length is known up front.
func writeJSON(w http.ResponseWriter, v any) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Printf("lotteryd: encoding response: %v", err)
		http.Error(w, "internal error", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	_, _ = w.Write(buf.Bytes())
}
