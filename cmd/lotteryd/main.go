// Command lotteryd demonstrates the real-time dispatcher as a tiny
// HTTP service: each request class is a currency-funded client of an
// rt.Dispatcher, so classes receive worker time in proportion to
// their ticket funding no matter how unbalanced the offered load.
//
//	lotteryd -addr :8080 -workers 2 -classes gold=500,silver=300,bronze=200
//
//	curl 'http://localhost:8080/work?class=gold&busy=5ms'   # do one job
//	curl 'http://localhost:8080/snapshot'                   # achieved vs entitled
//
// /work enqueues a job for its class and blocks until a worker has
// run it; a class whose queue is full answers 503 (the dispatcher's
// Reject backpressure policy). /snapshot returns the dispatcher's
// atomic rt.Snapshot as JSON: per-class dispatch counts, achieved vs
// entitled share, queue depth, and wait-latency percentiles.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/rt"
	"repro/internal/ticket"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	queueCap := flag.Int("queue", 256, "per-class queue capacity")
	seed := flag.Uint("seed", 1, "lottery PRNG seed")
	slice := flag.Duration("slice", 0, "expected slice for compensation tickets (0 = off)")
	classes := flag.String("classes", "gold=500,silver=300,bronze=200",
		"comma-separated class=tickets funding map")
	flag.Parse()

	funding, err := parseClasses(*classes)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	d := rt.New(rt.Config{
		Workers:       *workers,
		QueueCap:      *queueCap,
		Seed:          uint32(*seed),
		ExpectedSlice: *slice,
	})
	defer d.Close()

	clients := make(map[string]*rt.Client, len(funding))
	names := make([]string, 0, len(funding))
	for name, amount := range funding {
		c, err := d.NewClient(name, amount, rt.WithOverflow(rt.Reject))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		clients[name] = c
		names = append(names, name)
	}
	sort.Strings(names)

	mux := http.NewServeMux()
	mux.HandleFunc("/work", func(w http.ResponseWriter, r *http.Request) {
		c, ok := clients[r.URL.Query().Get("class")]
		if !ok {
			http.Error(w, fmt.Sprintf("unknown class; have %s", strings.Join(names, ", ")),
				http.StatusBadRequest)
			return
		}
		busy := time.Millisecond
		if v := r.URL.Query().Get("busy"); v != "" {
			var err error
			if busy, err = time.ParseDuration(v); err != nil {
				http.Error(w, "bad busy duration: "+err.Error(), http.StatusBadRequest)
				return
			}
		}
		enqueued := time.Now()
		task, err := c.Submit(func() { spin(busy) })
		switch {
		case errors.Is(err, rt.ErrQueueFull):
			http.Error(w, "class queue full", http.StatusServiceUnavailable)
			return
		case err != nil:
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		if err := task.Wait(); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, map[string]any{
			"class":    c.Name(),
			"busy":     busy.String(),
			"total_ms": float64(time.Since(enqueued).Microseconds()) / 1000,
		})
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, d.Snapshot())
	})

	log.Printf("lotteryd: %d workers, classes %s, listening on %s",
		d.Workers(), *classes, *addr)
	log.Fatal(http.ListenAndServe(*addr, mux))
}

// spin busy-loops for roughly d, modeling CPU-bound work (sleeping
// would not contend for the worker pool in any interesting way).
func spin(d time.Duration) {
	for end := time.Now().Add(d); time.Now().Before(end); {
	}
}

func parseClasses(s string) (map[string]ticket.Amount, error) {
	out := make(map[string]ticket.Amount)
	for _, part := range strings.Split(s, ",") {
		name, amount, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("lotteryd: bad class spec %q (want name=tickets)", part)
		}
		var n ticket.Amount
		if _, err := fmt.Sscanf(amount, "%d", &n); err != nil || n <= 0 {
			return nil, fmt.Errorf("lotteryd: bad ticket amount in %q", part)
		}
		if _, dup := out[name]; dup {
			return nil, fmt.Errorf("lotteryd: duplicate class %q", name)
		}
		out[name] = n
	}
	if len(out) == 0 {
		return nil, errors.New("lotteryd: no classes configured")
	}
	return out, nil
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
