// Command lotteryd demonstrates the real-time dispatcher as a tiny
// HTTP service: each request class is a currency-funded client of an
// rt.Dispatcher, so classes receive worker time in proportion to
// their ticket funding no matter how unbalanced the offered load.
//
//	lotteryd -addr :8080 -workers 2 -classes gold=500,silver=300,bronze=200
//
//	curl 'http://localhost:8080/work?class=gold&busy=5ms'   # do one job
//	curl 'http://localhost:8080/snapshot'                   # achieved vs entitled
//
// /work enqueues a job for its class and blocks until a worker has
// run it; a class whose queue is full answers 503 (the dispatcher's
// Reject backpressure policy). The job is bound to the request
// context: a caller that disconnects while its job is still queued
// cancels it, reclaiming the queue slot without a worker ever
// touching it. /snapshot returns the dispatcher's atomic rt.Snapshot
// as JSON: per-class dispatch counts, achieved vs entitled share,
// cancellations, queue depth, and wait-latency percentiles.
//
// On SIGINT/SIGTERM the daemon shuts down gracefully: the listener
// closes, in-flight requests finish, and the dispatcher drains its
// backlog, all bounded by -grace; a second deadline overrun discards
// still-queued jobs rather than hanging forever.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/internal/rt"
	"repro/internal/ticket"
)

// errConfig marks flag/configuration errors, which exit 2 (usage)
// rather than 1 (runtime failure).
var errConfig = errors.New("lotteryd: bad configuration")

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, err)
		if errors.Is(err, errConfig) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

// run is the daemon body, factored out of main so tests can drive the
// full lifecycle: it serves until ctx is done (the signal path), then
// shuts the HTTP server and dispatcher down gracefully. If ready is
// non-nil the bound listen address is sent on it once serving.
func run(ctx context.Context, args []string, ready chan<- net.Addr) error {
	fs := flag.NewFlagSet("lotteryd", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	queueCap := fs.Int("queue", 256, "per-class queue capacity")
	seed := fs.Uint("seed", 1, "lottery PRNG seed")
	slice := fs.Duration("slice", 0, "expected slice for compensation tickets (0 = off)")
	grace := fs.Duration("grace", 5*time.Second, "graceful shutdown deadline for in-flight requests and queued jobs")
	classes := fs.String("classes", "gold=500,silver=300,bronze=200",
		"comma-separated class=tickets funding map")
	if err := fs.Parse(args); err != nil {
		return fmt.Errorf("%w: %v", errConfig, err)
	}

	funding, err := parseClasses(*classes)
	if err != nil {
		return fmt.Errorf("%w: %v", errConfig, err)
	}

	d := rt.New(rt.Config{
		Workers:       *workers,
		QueueCap:      *queueCap,
		Seed:          uint32(*seed),
		ExpectedSlice: *slice,
	})

	clients := make(map[string]*rt.Client, len(funding))
	names := make([]string, 0, len(funding))
	for name, amount := range funding {
		c, err := d.NewClient(name, amount, rt.WithOverflow(rt.Reject))
		if err != nil {
			d.Close()
			return err
		}
		clients[name] = c
		names = append(names, name)
	}
	sort.Strings(names)

	mux := http.NewServeMux()
	mux.HandleFunc("/work", func(w http.ResponseWriter, r *http.Request) {
		c, ok := clients[r.URL.Query().Get("class")]
		if !ok {
			http.Error(w, fmt.Sprintf("unknown class; have %s", strings.Join(names, ", ")),
				http.StatusBadRequest)
			return
		}
		busy := time.Millisecond
		if v := r.URL.Query().Get("busy"); v != "" {
			var err error
			if busy, err = time.ParseDuration(v); err != nil {
				http.Error(w, "bad busy duration: "+err.Error(), http.StatusBadRequest)
				return
			}
		}
		enqueued := time.Now()
		// The job rides the request context: a disconnected caller
		// cancels its still-queued job and frees the slot.
		task, err := c.SubmitCtx(r.Context(), func() { spin(busy) })
		switch {
		case errors.Is(err, rt.ErrQueueFull):
			http.Error(w, "class queue full", http.StatusServiceUnavailable)
			return
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			return // caller went away before the job was admitted
		case err != nil:
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		switch err := task.WaitCtx(r.Context()); {
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			return // caller went away; a queued job was cancelled with it
		case err != nil:
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, map[string]any{
			"class":    c.Name(),
			"busy":     busy.String(),
			"total_ms": float64(time.Since(enqueued).Microseconds()) / 1000,
		})
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, d.Snapshot())
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		d.Close()
		return fmt.Errorf("lotteryd: listen: %w", err)
	}
	srv := &http.Server{
		Handler: mux,
		// No Read/WriteTimeout: /work legitimately blocks while its
		// job waits out the backlog. Header and idle timeouts still
		// bound dead connections.
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       60 * time.Second,
	}
	if ready != nil {
		ready <- ln.Addr()
	}
	log.Printf("lotteryd: %d workers, classes %s, listening on %s",
		d.Workers(), *classes, ln.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		d.Close()
		return fmt.Errorf("lotteryd: serve: %w", err)
	case <-ctx.Done():
		log.Printf("lotteryd: shutdown signal; draining (grace %v)", *grace)
	}

	// Stop accepting connections and let in-flight requests finish,
	// then drain the dispatcher's backlog — each bounded by the grace
	// deadline so a stuck queue cannot wedge shutdown.
	shutCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	shutErr := srv.Shutdown(shutCtx)
	if err := d.CloseTimeout(*grace); err != nil {
		log.Printf("lotteryd: drain cut short, queued jobs discarded: %v", err)
	}
	if shutErr != nil {
		return fmt.Errorf("lotteryd: shutdown: %w", shutErr)
	}
	log.Printf("lotteryd: drained cleanly")
	return nil
}

// spin busy-loops for roughly d, modeling CPU-bound work (sleeping
// would not contend for the worker pool in any interesting way).
func spin(d time.Duration) {
	for end := time.Now().Add(d); time.Now().Before(end); {
	}
}

func parseClasses(s string) (map[string]ticket.Amount, error) {
	out := make(map[string]ticket.Amount)
	for _, part := range strings.Split(s, ",") {
		name, amount, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("lotteryd: bad class spec %q (want name=tickets)", part)
		}
		var n ticket.Amount
		if _, err := fmt.Sscanf(amount, "%d", &n); err != nil || n <= 0 {
			return nil, fmt.Errorf("lotteryd: bad ticket amount in %q", part)
		}
		if _, dup := out[name]; dup {
			return nil, fmt.Errorf("lotteryd: duplicate class %q", name)
		}
		out[name] = n
	}
	if len(out) == 0 {
		return nil, errors.New("lotteryd: no classes configured")
	}
	return out, nil
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
