package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/rt"
	"repro/internal/ticket"
)

// startDaemon runs the daemon with test-friendly flags and returns
// its base URL and result channel.
func startDaemon(t *testing.T, ctx context.Context, extra ...string) (string, chan error) {
	t.Helper()
	args := append([]string{
		"-addr", "127.0.0.1:0",
		"-workers", "2",
		"-queue", "16",
		"-grace", "5s",
		"-classes", "gold=2,bronze=1",
	}, extra...)
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() { done <- run(ctx, args, ready) }()
	select {
	case addr := <-ready:
		return "http://" + addr.String(), done
	case err := <-done:
		t.Fatalf("daemon exited before serving: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never started serving")
	}
	return "", nil
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	return resp.StatusCode, body
}

// TestRunGracefulShutdown drives the full lifecycle: serve requests,
// then cancel the run context (the signal path) while a slow request
// is in flight, and verify the in-flight request completes and run
// returns cleanly.
func TestRunGracefulShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	base, done := startDaemon(t, ctx)

	if code, body := get(t, base+"/work?class=gold&busy=1ms"); code != http.StatusOK {
		t.Fatalf("/work = %d: %s", code, body)
	}
	if code, body := get(t, base+"/work?class=unknown"); code != http.StatusBadRequest {
		t.Fatalf("/work unknown class = %d: %s", code, body)
	}
	code, body := get(t, base+"/snapshot")
	if code != http.StatusOK {
		t.Fatalf("/snapshot = %d: %s", code, body)
	}
	var snap struct {
		Workers   int    `json:"workers"`
		Completed uint64 `json:"completed"`
	}
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("/snapshot not JSON: %v\n%s", err, body)
	}
	if snap.Workers != 2 || snap.Completed < 1 {
		t.Fatalf("snapshot: %+v", snap)
	}

	// Start a slow request, then shut down while it is in flight.
	var wg sync.WaitGroup
	slowCode := make(chan int, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		code, _ := get(t, base+"/work?class=bronze&busy=300ms")
		slowCode <- code
	}()
	time.Sleep(100 * time.Millisecond) // let the slow request reach a worker
	cancel()

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run after shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("run never returned after shutdown")
	}
	wg.Wait()
	if code := <-slowCode; code != http.StatusOK {
		t.Fatalf("in-flight request during shutdown = %d, want 200", code)
	}
}

// TestRunSIGINT exercises the real signal path: a SIGINT to the
// process must drain the daemon and make run return nil.
func TestRunSIGINT(t *testing.T) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	base, done := startDaemon(t, ctx)
	if code, body := get(t, base+"/work?class=gold"); code != http.StatusOK {
		t.Fatalf("/work = %d: %s", code, body)
	}
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGINT); err != nil {
		t.Fatalf("kill: %v", err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run after SIGINT: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("run never returned after SIGINT")
	}
}

// TestMetricsEndpoint loads the daemon, then checks that /metrics
// serves parseable Prometheus text whose per-class dispatch counters
// sum to /snapshot's dispatched total, and that the HTTP middleware
// families appear.
func TestMetricsEndpoint(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	base, done := startDaemon(t, ctx)

	for i := 0; i < 20; i++ {
		class := "gold"
		if i%3 == 0 {
			class = "bronze"
		}
		if code, body := get(t, base+"/work?class="+class); code != http.StatusOK {
			t.Fatalf("/work = %d: %s", code, body)
		}
	}
	// One 400 so http_requests_total has a non-200 series.
	if code, _ := get(t, base+"/work?class=nope"); code != http.StatusBadRequest {
		t.Fatalf("unknown class = %d, want 400", code)
	}

	code, snapBody := get(t, base+"/snapshot")
	if code != http.StatusOK {
		t.Fatalf("/snapshot = %d", code)
	}
	var snap struct {
		Dispatched uint64 `json:"dispatched"`
	}
	if err := json.Unmarshal(snapBody, &snap); err != nil {
		t.Fatalf("/snapshot not JSON: %v", err)
	}

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q, want Prometheus text format", ct)
	}
	metricsBody, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	// Parse the exposition line by line: every non-comment line must be
	// `name{labels} value` or `name value` with a float value.
	var clientDispatched uint64
	sc := bufio.NewScanner(strings.NewReader(string(metricsBody)))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		lastSpace := strings.LastIndexByte(line, ' ')
		if lastSpace < 0 {
			t.Fatalf("unparseable metrics line: %q", line)
		}
		val, err := strconv.ParseFloat(line[lastSpace+1:], 64)
		if err != nil {
			t.Fatalf("bad value in line %q: %v", line, err)
		}
		if strings.HasPrefix(line, "rt_client_dispatched_total{") {
			clientDispatched += uint64(val)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	// The acceptance check: per-client dispatch counters sum to the
	// snapshot's dispatched total. All 20 successful /work requests
	// completed before /snapshot and /metrics were read, and /metrics
	// reads the same dispatcher state, so the totals must agree exactly.
	if clientDispatched != snap.Dispatched {
		t.Errorf("sum(rt_client_dispatched_total) = %d, /snapshot dispatched = %d",
			clientDispatched, snap.Dispatched)
	}
	if snap.Dispatched < 20 {
		t.Errorf("dispatched = %d, want >= 20", snap.Dispatched)
	}
	for _, want := range []string{
		`rt_client_dispatched_total{client="gold",tenant="gold"}`,
		`rt_client_wait_seconds_bucket{client="gold",tenant="gold",le="+Inf"}`,
		`http_requests_total{path="/work",code="200"}`,
		`http_requests_total{path="/work",code="400"}`,
		`http_request_seconds_count{path="/work"}`,
		"# TYPE rt_dispatched_total counter",
	} {
		if !strings.Contains(string(metricsBody), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	cancel()
	<-done
}

// TestDebugEventsEndpoint checks the /debug/events ring: JSON lines in
// the shared {"at_ns","kind","who"} schema, the ?n= tail limit, and a
// 404 when recording is disabled with -events 0.
func TestDebugEventsEndpoint(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	base, done := startDaemon(t, ctx)

	for i := 0; i < 5; i++ {
		if code, body := get(t, base+"/work?class=gold"); code != http.StatusOK {
			t.Fatalf("/work = %d: %s", code, body)
		}
	}
	resp, err := http.Get(base + "/debug/events?n=4")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q, want application/x-ndjson", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d event lines, want 4:\n%s", len(lines), body)
	}
	for _, line := range lines {
		var ev struct {
			AtNS int64  `json:"at_ns"`
			Kind string `json:"kind"`
			Who  string `json:"who"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("event line not JSON: %v\n%s", err, line)
		}
		if ev.AtNS <= 0 || ev.Kind == "" || ev.Who != "gold" {
			t.Errorf("implausible event: %s", line)
		}
	}
	if code, _ := get(t, base+"/debug/events?n=bogus"); code != http.StatusBadRequest {
		t.Errorf("bad n = %d, want 400", code)
	}
	cancel()
	<-done

	// Disabled ring: the endpoint must 404, and the daemon still work.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	base2, done2 := startDaemon(t, ctx2, "-events", "0")
	if code, _ := get(t, base2+"/work?class=gold"); code != http.StatusOK {
		t.Fatal("daemon with -events 0 cannot serve work")
	}
	if code, _ := get(t, base2+"/debug/events"); code != http.StatusNotFound {
		t.Errorf("/debug/events with -events 0 = %d, want 404", code)
	}
	cancel2()
	<-done2
}

// TestPprofGating checks that pprof routes exist only behind -pprof.
func TestPprofGating(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	base, done := startDaemon(t, ctx)
	if code, _ := get(t, base+"/debug/pprof/cmdline"); code != http.StatusNotFound {
		t.Errorf("pprof without -pprof = %d, want 404", code)
	}
	cancel()
	<-done

	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	base2, done2 := startDaemon(t, ctx2, "-pprof")
	if code, body := get(t, base2+"/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("pprof with -pprof = %d: %s", code, body)
	}
	cancel2()
	<-done2
}

// TestWriteJSON covers the satellite bugfix: success sets
// Content-Length, and an unencodable value yields a 500 instead of a
// silently truncated 200.
func TestWriteJSON(t *testing.T) {
	rr := httptest.NewRecorder()
	writeJSON(rr, map[string]int{"a": 1})
	if rr.Code != http.StatusOK {
		t.Fatalf("code = %d", rr.Code)
	}
	if got := rr.Header().Get("Content-Length"); got != fmt.Sprint(rr.Body.Len()) {
		t.Errorf("Content-Length = %q, body is %d bytes", got, rr.Body.Len())
	}
	var m map[string]int
	if err := json.Unmarshal(rr.Body.Bytes(), &m); err != nil || m["a"] != 1 {
		t.Errorf("body = %q (%v)", rr.Body.String(), err)
	}

	rr = httptest.NewRecorder()
	writeJSON(rr, make(chan int)) // channels are not JSON-encodable
	if rr.Code != http.StatusInternalServerError {
		t.Errorf("unencodable value: code = %d, want 500", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); strings.Contains(ct, "application/json") {
		t.Errorf("error response claims JSON Content-Type %q", ct)
	}
}

// TestResourcesEndpoint runs the daemon in multi-resource mode:
// default reserves from -reserves, per-request ?mem=/?io= overrides,
// the /resources ledger view, impossible-reserve rejections, and full
// release of every reservation once the jobs are done.
func TestResourcesEndpoint(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	base, done := startDaemon(t, ctx,
		"-mem", "1048576", "-iorate", "1000000", "-ioburst", "65536",
		"-reserves", "gold=4096:64")

	// Default reserve rides along implicitly; overrides replace it.
	for _, url := range []string{
		"/work?class=gold&busy=1ms",                 // default 4096:64
		"/work?class=gold&busy=1ms&mem=8192&io=128", // override both
		"/work?class=bronze&busy=1ms",               // no default: plain CPU
		"/work?class=bronze&busy=1ms&mem=512&io=1",  // opt-in override
	} {
		if code, body := get(t, base+url); code != http.StatusOK {
			t.Fatalf("%s = %d: %s", url, code, body)
		}
	}

	code, body := get(t, base+"/resources")
	if code != http.StatusOK {
		t.Fatalf("/resources = %d: %s", code, body)
	}
	var snap struct {
		MemCapacity int64  `json:"mem_capacity_bytes"`
		MemFree     int64  `json:"mem_free_bytes"`
		IOGrants    uint64 `json:"io_grants"`
		Tenants     []struct {
			Name       string `json:"name"`
			IOConsumed int64  `json:"io_tokens_consumed"`
		} `json:"tenants"`
	}
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("/resources not JSON: %v\n%s", err, body)
	}
	if snap.MemCapacity != 1048576 {
		t.Errorf("mem capacity = %d, want 1048576", snap.MemCapacity)
	}
	// Every job above has finished (its /work response was read), so
	// every reservation has been released.
	if snap.MemFree != snap.MemCapacity {
		t.Errorf("mem free = %d, want %d (all jobs done)", snap.MemFree, snap.MemCapacity)
	}
	if snap.IOGrants == 0 {
		t.Error("no I/O grants recorded")
	}
	consumed := make(map[string]int64)
	for _, tn := range snap.Tenants {
		consumed[tn.Name] = tn.IOConsumed
	}
	if consumed["gold"] != 64+128 {
		t.Errorf("gold tokens consumed = %d, want 192", consumed["gold"])
	}
	if consumed["bronze"] != 1 {
		t.Errorf("bronze tokens consumed = %d, want 1", consumed["bronze"])
	}

	// The ledger reports into the shared registry.
	if code, body := get(t, base+"/metrics"); code != http.StatusOK ||
		!strings.Contains(string(body), `res_mem_capacity_bytes`) {
		t.Errorf("/metrics missing res_* families (code %d)", code)
	}

	// Impossible reserves are caller errors, not overload.
	for _, url := range []string{
		"/work?class=gold&mem=9999999", // exceeds pool capacity
		"/work?class=gold&io=999999",   // exceeds bucket burst
		"/work?class=gold&mem=x",       // unparseable
		"/work?class=gold&io=-1",       // negative
	} {
		if code, _ := get(t, base+url); code != http.StatusBadRequest {
			t.Errorf("%s = %d, want 400", url, code)
		}
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run after shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("run never returned after shutdown")
	}

	// Without pools the endpoint 404s and reserves are rejected.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	base2, done2 := startDaemon(t, ctx2)
	if code, _ := get(t, base2+"/resources"); code != http.StatusNotFound {
		t.Errorf("/resources without pools = %d, want 404", code)
	}
	if code, _ := get(t, base2+"/work?class=gold&mem=64"); code != http.StatusBadRequest {
		t.Errorf("reserve without pools = %d, want 400", code)
	}
	cancel2()
	<-done2
}

func TestParseReserves(t *testing.T) {
	funding := map[string]ticket.Amount{"gold": 2, "bronze": 1}
	m, err := parseReserves("gold=4096:64, bronze=0:8", funding)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 2 || m["gold"] != (rt.Reserve{MemBytes: 4096, IOTokens: 64}) ||
		m["bronze"] != (rt.Reserve{IOTokens: 8}) {
		t.Fatalf("parseReserves: %v", m)
	}
	if m, err := parseReserves("", funding); err != nil || len(m) != 0 {
		t.Errorf("empty spec: %v, %v", m, err)
	}
	for _, bad := range []string{
		"gold",              // no =
		"gold=64",           // no :
		"gold=x:1",          // bad mem
		"gold=1:x",          // bad io
		"gold=-1:0",         // negative mem
		"gold=0:-1",         // negative io
		"silver=1:1",        // unknown class
		"gold=1:1,gold=2:2", // duplicate
	} {
		if _, err := parseReserves(bad, funding); err == nil {
			t.Errorf("parseReserves(%q) accepted", bad)
		}
	}
}

func TestRunBadConfig(t *testing.T) {
	if err := run(context.Background(), []string{"-classes", "gold=-1"}, nil); err == nil {
		t.Fatal("run accepted a negative ticket amount")
	}
	if err := run(context.Background(), []string{"-classes", ""}, nil); err == nil {
		t.Fatal("run accepted an empty class map")
	}
	if err := run(context.Background(), []string{"-events", "-1"}, nil); err == nil {
		t.Fatal("run accepted a negative event ring capacity")
	}
	if err := run(context.Background(), []string{"-mem", "-1"}, nil); err == nil {
		t.Fatal("run accepted a negative memory capacity")
	}
	if err := run(context.Background(), []string{"-reserves", "gold=1:1"}, nil); err == nil {
		t.Fatal("run accepted reserves without any resource pool")
	}
	if err := run(context.Background(), []string{"-mem", "4096", "-reserves", "nope=1:1"}, nil); err == nil {
		t.Fatal("run accepted a reserve for an unknown class")
	}
	if err := run(context.Background(), []string{"-slo", "nope=50ms"}, nil); err == nil {
		t.Fatal("run accepted an SLO for an unknown class")
	}
	if err := run(context.Background(), []string{"-shed", "-1"}, nil); err == nil {
		t.Fatal("run accepted a negative shed watermark")
	}
	if err := run(context.Background(), []string{"-shed", "10", "-shedlow", "10"}, nil); err == nil {
		t.Fatal("run accepted -shedlow >= -shed")
	}
	if err := run(context.Background(), []string{"-inflate", "0.5"}, nil); err == nil {
		t.Fatal("run accepted an inflation cap below 1")
	}
}

func TestParseSLOs(t *testing.T) {
	funding := map[string]ticket.Amount{"gold": 2, "bronze": 1}
	m, err := parseSLOs("gold=50ms, bronze=2s", funding)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 2 || m["gold"] != 50*time.Millisecond || m["bronze"] != 2*time.Second {
		t.Fatalf("parseSLOs: %v", m)
	}
	if m, err := parseSLOs("", funding); err != nil || len(m) != 0 {
		t.Fatalf("empty SLO spec: %v, %v", m, err)
	}
	for _, bad := range []string{"gold", "gold=0s", "gold=-1ms", "gold=x", "nope=1ms", "gold=1ms,gold=2ms"} {
		if _, err := parseSLOs(bad, funding); err == nil {
			t.Errorf("parseSLOs(%q) accepted", bad)
		}
	}
}

// TestOverloadEndpoint: /overload is 404 with the controller off, and
// reports registered classes, watermarks, and SLO targets when on.
func TestOverloadEndpoint(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	base, done := startDaemon(t, ctx)
	if code, _ := get(t, base+"/overload"); code != http.StatusNotFound {
		t.Fatalf("/overload without -slo/-shed = %d, want 404", code)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	base2, done2 := startDaemon(t, ctx2, "-slo", "gold=50ms", "-shed", "100", "-shedlow", "40")
	code, body := get(t, base2+"/overload")
	if code != http.StatusOK {
		t.Fatalf("/overload = %d: %s", code, body)
	}
	var st struct {
		HighWatermark int `json:"high_watermark"`
		LowWatermark  int `json:"low_watermark"`
		Tenants       []struct {
			Name      string  `json:"name"`
			TargetP99 int64   `json:"target_p99_ns"`
			Factor    float64 `json:"factor"`
		} `json:"tenants"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("/overload JSON: %v\n%s", err, body)
	}
	if st.HighWatermark != 100 || st.LowWatermark != 40 {
		t.Fatalf("watermarks %d/%d, want 100/40", st.HighWatermark, st.LowWatermark)
	}
	if len(st.Tenants) != 2 {
		t.Fatalf("registered tenants = %d, want both classes", len(st.Tenants))
	}
	for _, ts := range st.Tenants {
		switch ts.Name {
		case "gold":
			if ts.TargetP99 != int64(50*time.Millisecond) {
				t.Fatalf("gold target %d, want 50ms", ts.TargetP99)
			}
		case "bronze":
			if ts.TargetP99 != 0 {
				t.Fatalf("bronze target %d, want none", ts.TargetP99)
			}
		}
		if ts.Factor < 1 {
			t.Fatalf("tenant %s factor %v < 1", ts.Name, ts.Factor)
		}
	}
	cancel2()
	if err := <-done2; err != nil {
		t.Fatal(err)
	}
}

// TestRetryAfterOn503: a full class queue answers 503 with a
// Retry-After hint.
func TestRetryAfterOn503(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// One worker, tiny queue, no shedding: saturate gold with slow
	// jobs until a submit bounces.
	base, done := startDaemon(t, ctx, "-workers", "1", "-queue", "2", "-slo", "gold=1s")

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(base + "/work?class=gold&busy=20ms")
				if err != nil {
					return
				}
				resp.Body.Close()
			}
		}()
	}
	defer func() { close(stop); wg.Wait() }()

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/work?class=gold&busy=20ms")
		if err != nil {
			t.Fatal(err)
		}
		retry := resp.Header.Get("Retry-After")
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			if retry == "" {
				t.Fatal("503 without a Retry-After header")
			}
			if n, err := strconv.Atoi(retry); err != nil || n < 1 {
				t.Fatalf("Retry-After %q, want a positive integer of seconds", retry)
			}
			cancel()
			<-done
			return
		}
	}
	t.Fatal("never provoked a 503 from the saturated queue")
}

func TestParseClasses(t *testing.T) {
	m, err := parseClasses("gold=500, silver=300,bronze=200")
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 3 || m["gold"] != 500 || m["silver"] != 300 || m["bronze"] != 200 {
		t.Fatalf("parseClasses: %v", m)
	}
	for _, bad := range []string{"", "gold", "gold=0", "gold=x", "gold=1,gold=2"} {
		if _, err := parseClasses(bad); err == nil {
			t.Errorf("parseClasses(%q) accepted", bad)
		}
	}
}
