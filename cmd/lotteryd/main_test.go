package main

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"testing"
	"time"
)

// startDaemon runs the daemon with test-friendly flags and returns
// its base URL and result channel.
func startDaemon(t *testing.T, ctx context.Context, extra ...string) (string, chan error) {
	t.Helper()
	args := append([]string{
		"-addr", "127.0.0.1:0",
		"-workers", "2",
		"-queue", "16",
		"-grace", "5s",
		"-classes", "gold=2,bronze=1",
	}, extra...)
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() { done <- run(ctx, args, ready) }()
	select {
	case addr := <-ready:
		return "http://" + addr.String(), done
	case err := <-done:
		t.Fatalf("daemon exited before serving: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never started serving")
	}
	return "", nil
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	return resp.StatusCode, body
}

// TestRunGracefulShutdown drives the full lifecycle: serve requests,
// then cancel the run context (the signal path) while a slow request
// is in flight, and verify the in-flight request completes and run
// returns cleanly.
func TestRunGracefulShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	base, done := startDaemon(t, ctx)

	if code, body := get(t, base+"/work?class=gold&busy=1ms"); code != http.StatusOK {
		t.Fatalf("/work = %d: %s", code, body)
	}
	if code, body := get(t, base+"/work?class=unknown"); code != http.StatusBadRequest {
		t.Fatalf("/work unknown class = %d: %s", code, body)
	}
	code, body := get(t, base+"/snapshot")
	if code != http.StatusOK {
		t.Fatalf("/snapshot = %d: %s", code, body)
	}
	var snap struct {
		Workers   int    `json:"workers"`
		Completed uint64 `json:"completed"`
	}
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("/snapshot not JSON: %v\n%s", err, body)
	}
	if snap.Workers != 2 || snap.Completed < 1 {
		t.Fatalf("snapshot: %+v", snap)
	}

	// Start a slow request, then shut down while it is in flight.
	var wg sync.WaitGroup
	slowCode := make(chan int, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		code, _ := get(t, base+"/work?class=bronze&busy=300ms")
		slowCode <- code
	}()
	time.Sleep(100 * time.Millisecond) // let the slow request reach a worker
	cancel()

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run after shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("run never returned after shutdown")
	}
	wg.Wait()
	if code := <-slowCode; code != http.StatusOK {
		t.Fatalf("in-flight request during shutdown = %d, want 200", code)
	}
}

// TestRunSIGINT exercises the real signal path: a SIGINT to the
// process must drain the daemon and make run return nil.
func TestRunSIGINT(t *testing.T) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	base, done := startDaemon(t, ctx)
	if code, body := get(t, base+"/work?class=gold"); code != http.StatusOK {
		t.Fatalf("/work = %d: %s", code, body)
	}
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGINT); err != nil {
		t.Fatalf("kill: %v", err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run after SIGINT: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("run never returned after SIGINT")
	}
}

func TestRunBadConfig(t *testing.T) {
	if err := run(context.Background(), []string{"-classes", "gold=-1"}, nil); err == nil {
		t.Fatal("run accepted a negative ticket amount")
	}
	if err := run(context.Background(), []string{"-classes", ""}, nil); err == nil {
		t.Fatal("run accepted an empty class map")
	}
}

func TestParseClasses(t *testing.T) {
	m, err := parseClasses("gold=500, silver=300,bronze=200")
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 3 || m["gold"] != 500 || m["silver"] != 300 || m["bronze"] != 200 {
		t.Fatalf("parseClasses: %v", m)
	}
	for _, bad := range []string{"", "gold", "gold=0", "gold=x", "gold=1,gold=2"} {
		if _, err := parseClasses(bad); err == nil {
			t.Errorf("parseClasses(%q) accepted", bad)
		}
	}
}
