package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
)

// traceLine is the /debug/trace JSON-lines schema.
type traceLine struct {
	AtNS       int64  `json:"at_ns"`
	Kind       string `json:"kind"`
	Who        string `json:"who"`
	Tenant     string `json:"tenant"`
	ID         uint64 `json:"id"`
	Shard      int    `json:"shard"`
	Worker     int    `json:"worker"`
	ReserveNS  int64  `json:"reserve_ns"`
	QueueNS    int64  `json:"queue_ns"`
	DispatchNS int64  `json:"dispatch_ns"`
	RunNS      int64  `json:"run_ns"`
	EndNS      int64  `json:"end_ns"`
}

func getFull(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	return resp, body
}

func ndjsonLines(body []byte) []string {
	s := strings.TrimSpace(string(body))
	if s == "" {
		return nil
	}
	return strings.Split(s, "\n")
}

// TestDebugTraceEndpoint drives a fully-sampled daemon and checks the
// /debug/trace flight recorder: span schema, stage accounting, the
// ?n= / ?after= cursor with its X-Trace-* headers, and the 404 when
// tracing is off (the default).
func TestDebugTraceEndpoint(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	base, done := startDaemon(t, ctx, "-trace-sample", "1", "-trace-buf", "64")

	const jobs = 12
	for i := 0; i < jobs; i++ {
		class := "gold"
		if i%3 == 0 {
			class = "bronze"
		}
		if code, body := get(t, base+"/work?class="+class+"&busy=1ms"); code != http.StatusOK {
			t.Fatalf("/work = %d: %s", code, body)
		}
	}

	resp, body := getFull(t, base+"/debug/trace")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/trace = %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q, want application/x-ndjson", ct)
	}
	lines := ndjsonLines(body)
	if len(lines) != jobs {
		t.Fatalf("got %d spans at 100%% sampling, want %d:\n%s", len(lines), jobs, body)
	}
	var lastID uint64
	for _, line := range lines {
		var sp traceLine
		if err := json.Unmarshal([]byte(line), &sp); err != nil {
			t.Fatalf("span line not JSON: %v\n%s", err, line)
		}
		if sp.ID <= lastID {
			t.Errorf("span ids not increasing: %d after %d", sp.ID, lastID)
		}
		lastID = sp.ID
		if sp.Kind != "complete" {
			t.Errorf("span kind = %q, want complete", sp.Kind)
		}
		if sp.Who != "gold" && sp.Who != "bronze" {
			t.Errorf("span who = %q", sp.Who)
		}
		if sp.Tenant != sp.Who {
			t.Errorf("span tenant = %q, want %q", sp.Tenant, sp.Who)
		}
		if sp.Shard < 0 || sp.Worker < 0 || sp.Worker >= 2 {
			t.Errorf("completed span placed at shard %d worker %d", sp.Shard, sp.Worker)
		}
		if sp.AtNS <= 0 || sp.ReserveNS < 0 || sp.QueueNS < 0 || sp.DispatchNS < 0 || sp.RunNS < 0 {
			t.Errorf("implausible span timing: %s", line)
		}
		if sum := sp.AtNS + sp.ReserveNS + sp.QueueNS + sp.DispatchNS + sp.RunNS; sp.EndNS != sum {
			t.Errorf("end_ns = %d, want at_ns + stage sum = %d", sp.EndNS, sum)
		}
	}
	if got := resp.Header.Get("X-Trace-Last-ID"); got != strconv.FormatUint(lastID, 10) {
		t.Errorf("X-Trace-Last-ID = %q, want %d", got, lastID)
	}
	if got := resp.Header.Get("X-Trace-Missed"); got != "0" {
		t.Errorf("X-Trace-Missed = %q, want 0 (ring larger than span count)", got)
	}

	// Tail limit.
	if _, body := getFull(t, base+"/debug/trace?n=3"); len(ndjsonLines(body)) != 3 {
		t.Errorf("?n=3 returned %d lines", len(ndjsonLines(body)))
	}
	// Cursor: nothing newer than the last id; the header echoes the cursor.
	resp, body = getFull(t, base+"/debug/trace?after="+strconv.FormatUint(lastID, 10))
	if len(ndjsonLines(body)) != 0 {
		t.Errorf("cursor past the end returned %d lines", len(ndjsonLines(body)))
	}
	if got := resp.Header.Get("X-Trace-Last-ID"); got != strconv.FormatUint(lastID, 10) {
		t.Errorf("empty tail X-Trace-Last-ID = %q, want the cursor %d", got, lastID)
	}
	// Cursor mid-stream: strictly newer spans only.
	mid := lastID - 4
	_, body = getFull(t, base+"/debug/trace?after="+strconv.FormatUint(mid, 10))
	lines = ndjsonLines(body)
	if len(lines) != 4 {
		t.Fatalf("?after=%d returned %d lines, want 4", mid, len(lines))
	}
	var first traceLine
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if first.ID != mid+1 {
		t.Errorf("first span after cursor = id %d, want %d", first.ID, mid+1)
	}
	if code, _ := get(t, base+"/debug/trace?after=x"); code != http.StatusBadRequest {
		t.Errorf("bad after = %d, want 400", code)
	}
	cancel()
	<-done

	// Tracing is off by default: 404, daemon otherwise healthy.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	base2, done2 := startDaemon(t, ctx2)
	if code, _ := get(t, base2+"/work?class=gold"); code != http.StatusOK {
		t.Fatal("default daemon cannot serve work")
	}
	if code, _ := get(t, base2+"/debug/trace"); code != http.StatusNotFound {
		t.Errorf("/debug/trace without -trace-sample = %d, want 404", code)
	}
	cancel2()
	<-done2
}

// TestFairnessEndpoint closes audit windows with a tiny -audit-window
// and checks the /debug/fairness report: both classes included, exact
// expected shares from the ticket ratio, observed shares summing to 1,
// and the 404 with the audit disabled.
func TestFairnessEndpoint(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	base, done := startDaemon(t, ctx, "-audit-window", "8", "-audit-tol", "100")

	// Sequential requests alternate classes, so every 8-draw window
	// contains both tenants. 24 jobs close 3 windows.
	for i := 0; i < 24; i++ {
		class := "gold"
		if i%2 == 0 {
			class = "bronze"
		}
		if code, body := get(t, base+"/work?class="+class); code != http.StatusOK {
			t.Fatalf("/work = %d: %s", code, body)
		}
	}

	code, body := get(t, base+"/debug/fairness")
	if code != http.StatusOK {
		t.Fatalf("/debug/fairness = %d: %s", code, body)
	}
	var rep struct {
		Window   uint64  `json:"window"`
		Draws    uint64  `json:"draws"`
		Included int     `json:"included"`
		MaxRel   float64 `json:"max_rel_err"`
		Drifted  bool    `json:"drifted"`
		Tenants  []struct {
			Name     string  `json:"name"`
			Tickets  float64 `json:"tickets"`
			Expected float64 `json:"expected_share"`
			Observed float64 `json:"observed_share"`
			Excluded bool    `json:"excluded"`
		} `json:"tenants"`
	}
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatalf("/debug/fairness not JSON: %v\n%s", err, body)
	}
	if rep.Window < 3 || rep.Draws != 8 {
		t.Fatalf("window %d draws %d, want >= 3 windows of 8", rep.Window, rep.Draws)
	}
	if rep.Included != 2 || len(rep.Tenants) != 2 {
		t.Fatalf("included %d of %d tenants, want both: %s", rep.Included, len(rep.Tenants), body)
	}
	var obsSum float64
	for _, tn := range rep.Tenants {
		if tn.Excluded {
			t.Errorf("tenant %s excluded: %s", tn.Name, body)
		}
		obsSum += tn.Observed
		want := 2.0 / 3.0 // gold=2
		if tn.Name == "bronze" {
			want = 1.0 / 3.0
		}
		if tn.Expected != want {
			t.Errorf("tenant %s expected share %v, want %v", tn.Name, tn.Expected, want)
		}
	}
	if obsSum < 0.999 || obsSum > 1.001 {
		t.Errorf("observed shares sum to %v, want 1", obsSum)
	}
	if rep.Drifted {
		t.Errorf("drifted at tolerance 100: %s", body)
	}
	cancel()
	<-done

	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	base2, done2 := startDaemon(t, ctx2, "-audit-window", "0")
	if code, _ := get(t, base2+"/debug/fairness"); code != http.StatusNotFound {
		t.Errorf("/debug/fairness with -audit-window 0 = %d, want 404", code)
	}
	cancel2()
	<-done2
}

// TestDebugEventsCursor pins the ?after= resume protocol on a ring
// small enough to evict: X-Events-Last-ID is the polling cursor,
// X-Events-Dropped counts the evicted gap, and ids are monotone.
func TestDebugEventsCursor(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	base, done := startDaemon(t, ctx, "-events", "4")

	for i := 0; i < 6; i++ {
		if code, body := get(t, base+"/work?class=gold"); code != http.StatusOK {
			t.Fatalf("/work = %d: %s", code, body)
		}
	}
	resp, body := getFull(t, base+"/debug/events")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/events = %d: %s", resp.StatusCode, body)
	}
	lines := ndjsonLines(body)
	if len(lines) != 4 {
		t.Fatalf("ring of 4 returned %d lines:\n%s", len(lines), body)
	}
	var lastID uint64
	for _, line := range lines {
		var ev struct {
			ID   uint64 `json:"id"`
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("event line not JSON: %v\n%s", err, line)
		}
		if ev.ID <= lastID {
			t.Errorf("event ids not increasing: %d after %d", ev.ID, lastID)
		}
		lastID = ev.ID
	}
	// 6 jobs emit well over 4 events, so eviction has happened and an
	// after=0 reader is told how much of the stream it missed.
	dropped, err := strconv.ParseUint(resp.Header.Get("X-Events-Dropped"), 10, 64)
	if err != nil || dropped == 0 {
		t.Errorf("X-Events-Dropped = %q, want a positive count", resp.Header.Get("X-Events-Dropped"))
	}
	if got := resp.Header.Get("X-Events-Last-ID"); got != strconv.FormatUint(lastID, 10) {
		t.Errorf("X-Events-Last-ID = %q, want %d", got, lastID)
	}
	if lastID != dropped+4 {
		t.Errorf("last id %d != dropped %d + 4 retained", lastID, dropped)
	}

	// Resuming from the cursor sees nothing new and drops nothing.
	resp, body = getFull(t, base+"/debug/events?after="+strconv.FormatUint(lastID, 10))
	if len(ndjsonLines(body)) != 0 {
		t.Errorf("resume at cursor returned %d lines", len(ndjsonLines(body)))
	}
	if got := resp.Header.Get("X-Events-Dropped"); got != "0" {
		t.Errorf("resume at cursor X-Events-Dropped = %q, want 0", got)
	}
	// A cursor inside the retained window resumes without loss.
	resp, body = getFull(t, base+"/debug/events?after="+strconv.FormatUint(lastID-2, 10))
	if len(ndjsonLines(body)) != 2 {
		t.Errorf("resume 2 back returned %d lines", len(ndjsonLines(body)))
	}
	if got := resp.Header.Get("X-Events-Dropped"); got != "0" {
		t.Errorf("in-window resume X-Events-Dropped = %q, want 0", got)
	}
	if code, _ := get(t, base+"/debug/events?after=-1"); code != http.StatusBadRequest {
		t.Errorf("bad after = %d, want 400", code)
	}
	cancel()
	<-done
}

func TestTraceAuditBadConfig(t *testing.T) {
	for _, args := range [][]string{
		{"-trace-sample", "1.5"},
		{"-trace-sample", "-0.1"},
		{"-trace-sample", "0.5", "-trace-buf", "0"},
		{"-audit-tol", "0"},
	} {
		if err := run(context.Background(), args, nil); err == nil {
			t.Errorf("run accepted %v", args)
		}
	}
}
