// Command lotterysim runs the paper-reproduction experiments and
// prints their tables and series.
//
// Usage:
//
//	lotterysim -list
//	lotterysim -run fig4            # one experiment at full length
//	lotterysim -run all -scale 0.1  # everything, abbreviated 10x
//	lotterysim -run fig7 -seed 7
//
// Scale 1 reproduces the paper's full experiment durations (hundreds
// of simulated seconds; tens of wall seconds). Smaller scales shrink
// durations proportionally for quick looks.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/trace"
)

func main() {
	var (
		run     = flag.String("run", "", "experiment id to run, or 'all'")
		scale   = flag.Float64("scale", 1.0, "time scale (1 = paper-length runs)")
		seed    = flag.Uint("seed", 1, "PRNG seed (same seed = identical run)")
		list    = flag.Bool("list", false, "list available experiments")
		asJSON  = flag.Bool("json", false, "emit structured results as JSON instead of text reports")
		doTrace = flag.Bool("trace", false, "trace the experiment's scheduler: per-thread wait-latency percentiles (p50/p95/p99) and the last events")
		traceTo = flag.String("trace-json", "", "export scheduler events as JSON lines to this file ('-' = stdout), in the same {at_ns,kind,who} schema lotteryd's /debug/events serves")
	)
	flag.Parse()

	if *list || *run == "" {
		fmt.Println("available experiments:")
		for _, r := range experiments.All() {
			fmt.Printf("  %-15s %s\n", r.ID, r.Title)
		}
		if *run == "" {
			fmt.Println("\nrun one with: lotterysim -run <id> [-scale 0.1] [-seed N]")
		}
		return
	}

	runners := experiments.All()
	if *run != "all" {
		r := experiments.Find(*run)
		if r == nil {
			fmt.Fprintf(os.Stderr, "lotterysim: unknown experiment %q (try -list)\n", *run)
			os.Exit(1)
		}
		runners = []experiments.Runner{*r}
	}
	if *asJSON {
		out := make(map[string]any, len(runners))
		for _, r := range runners {
			out[r.ID] = r.Exec(*scale, uint32(*seed))
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "lotterysim:", err)
			os.Exit(1)
		}
		return
	}
	var jsonOut io.Writer
	if *traceTo != "" {
		if *traceTo == "-" {
			jsonOut = os.Stdout
		} else {
			f, err := os.Create(*traceTo)
			if err != nil {
				fmt.Fprintln(os.Stderr, "lotterysim:", err)
				os.Exit(1)
			}
			defer f.Close()
			jsonOut = f
		}
	}
	for i, r := range runners {
		if i > 0 {
			fmt.Println()
		}
		var rec *trace.Recorder
		if *doTrace || jsonOut != nil {
			// Retain only the tail of the event log when printing text
			// (experiments emit an event per quantum); keep a deeper ring
			// for the JSON export. Latency accounting covers the full run
			// either way.
			capacity := 16
			if jsonOut != nil {
				capacity = 65536
			}
			rec = trace.NewRecorder(capacity)
			core.SetDefaultTracer(rec)
		}
		start := time.Now()
		fmt.Printf("=== %s: %s (scale %g, seed %d)\n", r.ID, r.Title, *scale, *seed)
		fmt.Print(r.Run(*scale, uint32(*seed)))
		if rec != nil {
			core.SetDefaultTracer(nil)
			if *doTrace {
				fmt.Printf("scheduler trace (%d events recorded, last %d shown):\n", rec.Total(), min(len(rec.Events()), 16))
				fmt.Print(rec.Format(16))
			}
			if jsonOut != nil {
				if err := rec.WriteJSON(jsonOut, 0); err != nil {
					fmt.Fprintln(os.Stderr, "lotterysim: trace-json:", err)
					os.Exit(1)
				}
			}
		}
		fmt.Printf("--- completed in %v\n", time.Since(start).Round(time.Millisecond))
	}
}
