// Command lotterylint runs the repository's domain-specific static
// analyzers (internal/analysis) over the given package patterns and
// exits nonzero if any contract violation is found. It is the
// machine-checked side of the scheduler's concurrency and determinism
// contracts; see DESIGN.md §6 for the analyzer catalogue.
//
// Usage:
//
//	go run ./cmd/lotterylint ./...
//	go run ./cmd/lotterylint -only detsource ./internal/sim/...
//
// Each analyzer carries its own package scope (detsource only runs
// over the deterministic packages, ctxflow only over cmd/ and
// examples/); -only restricts the suite further by name. Findings can
// be waived line-by-line with a justified directive:
//
//	//lint:ignore <analyzer> <reason>
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: lotterylint [-only names] [-list] [packages]\n\n")
		fmt.Fprintf(os.Stderr, "Analyzers:\n")
		for _, a := range analysis.Analyzers {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.Analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	suite := analysis.Analyzers
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range analysis.Analyzers {
			byName[a.Name] = a
		}
		suite = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(os.Stderr, "lotterylint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			suite = append(suite, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load("", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lotterylint:", err)
		os.Exit(2)
	}

	found := 0
	for _, pkg := range pkgs {
		diags, err := analysis.RunScoped(suite, pkg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lotterylint:", err)
			os.Exit(2)
		}
		for _, d := range diags {
			fmt.Println(d)
			found++
		}
	}
	if found > 0 {
		fmt.Fprintf(os.Stderr, "lotterylint: %d finding(s)\n", found)
		os.Exit(1)
	}
}
