// Command lotterylint runs the repository's domain-specific static
// analyzers (internal/analysis) over the given package patterns and
// exits nonzero on contract violations. It is the machine-checked side
// of the scheduler's concurrency and determinism contracts; see
// DESIGN.md §6 for the analyzer catalogue and the declared global lock
// order the suite enforces.
//
// Usage:
//
//	go run ./cmd/lotterylint ./...
//	go run ./cmd/lotterylint -only lockorder ./internal/rt/...
//	go run ./cmd/lotterylint -json -baseline lint_baseline.json ./...
//
// The load is inter-procedural: every matched package is type-checked
// together with its _test.go files, and the concurrency analyzers
// follow calls across package boundaries. Each analyzer carries its
// own package scope; -only restricts the suite further by name.
//
// Findings can be waived line-by-line with a justified directive —
//
//	//lint:ignore <analyzer> <reason>
//
// — or accepted wholesale in a baseline file (-baseline): a JSON list
// of findings with written justifications. Exit codes distinguish the
// failure modes so CI can tell them apart:
//
//	0  clean (or every finding baselined)
//	1  new finding not in the baseline
//	2  usage or load error
//	3  stale baseline entry or directive debt (nothing left to suppress)
//
// -update-baseline rewrites the baseline file from the current run,
// preserving reasons for entries that survive.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit findings as JSON objects, one per line")
	baselinePath := flag.String("baseline", "", "baseline file of accepted findings (lint_baseline.json)")
	updateBaseline := flag.Bool("update-baseline", false, "rewrite the baseline file from this run's findings")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: lotterylint [-only names] [-list] [-json] [-baseline file] [-update-baseline] [packages]\n\n")
		fmt.Fprintf(os.Stderr, "Analyzers:\n")
		for _, a := range analysis.Analyzers {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.Analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	suite := analysis.Analyzers
	if *only != "" {
		suite = nil
		for _, name := range strings.Split(*only, ",") {
			a := analysis.AnalyzerByName(name)
			if a == nil {
				fmt.Fprintf(os.Stderr, "lotterylint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			suite = append(suite, a)
		}
	}
	if *updateBaseline && *baselinePath == "" {
		fmt.Fprintln(os.Stderr, "lotterylint: -update-baseline requires -baseline")
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load("", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lotterylint:", err)
		os.Exit(2)
	}

	diags, err := analysis.RunSuite(suite, pkgs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lotterylint:", err)
		os.Exit(2)
	}

	var baseline *analysis.Baseline
	if *baselinePath != "" && !*updateBaseline {
		baseline, err = analysis.LoadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lotterylint:", err)
			os.Exit(2)
		}
	}

	if *updateBaseline {
		prev, _ := analysis.LoadBaseline(*baselinePath)
		if err := analysis.WriteBaseline(*baselinePath, ".", diags, prev); err != nil {
			fmt.Fprintln(os.Stderr, "lotterylint:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "lotterylint: wrote %d finding(s) to %s\n", len(diags), *baselinePath)
		return
	}

	news, stale := diags, []analysis.BaselineEntry(nil)
	if baseline != nil {
		news, stale = baseline.Diff(".", diags)
	}

	emit := func(d analysis.Diagnostic) {
		if *jsonOut {
			out, _ := json.Marshal(struct {
				File     string `json:"file"`
				Line     int    `json:"line"`
				Column   int    `json:"column"`
				Analyzer string `json:"analyzer"`
				Message  string `json:"message"`
			}{d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message})
			fmt.Println(string(out))
			return
		}
		fmt.Println(d)
	}
	for _, d := range news {
		emit(d)
	}
	for _, e := range stale {
		fmt.Fprintf(os.Stderr, "lotterylint: stale baseline entry (finding no longer produced): %s: %s: %s\n",
			e.File, e.Analyzer, e.Message)
	}

	switch {
	case len(news) > 0:
		fmt.Fprintf(os.Stderr, "lotterylint: %d new finding(s)\n", len(news))
		os.Exit(1)
	case len(stale) > 0:
		fmt.Fprintf(os.Stderr, "lotterylint: %d stale baseline entr(ies); delete them from %s\n",
			len(stale), *baselinePath)
		os.Exit(3)
	}
}
