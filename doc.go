// Package repro is a from-scratch Go reproduction of "Lottery
// Scheduling: Flexible Proportional-Share Resource Management"
// (Waldspurger & Weihl, OSDI 1994).
//
// The implementation lives under internal/: the ticket/currency
// system, the lottery draw structures, the scheduling policies, a
// deterministic simulated kernel, the paper's workloads, and one
// experiment harness per figure. bench_test.go in this directory
// regenerates every table and figure; see DESIGN.md for the system
// inventory and EXPERIMENTS.md for paper-vs-measured results.
package repro
