// Quickstart: two compute-bound threads with a 2:1 ticket allocation.
// The lottery scheduler gives them CPU time in that ratio, and a
// mid-run re-funding takes effect on the very next scheduling decision
// (§2: changes are "immediately reflected in the next allocation
// decision").
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/sim"
)

func main() {
	sys := core.NewSystem(core.WithSeed(2024))
	defer sys.Shutdown()

	spin := func(ctx *kernel.Ctx) {
		for {
			ctx.Compute(10 * sim.Millisecond)
		}
	}
	a := sys.Spawn("A", spin)
	b := sys.Spawn("B", spin)
	tkA := a.Fund(200) // 200 base tickets
	b.Fund(100)        // 100 base tickets

	sys.RunFor(60 * sim.Second)
	fmt.Printf("after 60s at 2:1 —  A: %6.2fs   B: %6.2fs   ratio %.2f\n",
		a.CPUTime().Seconds(), b.CPUTime().Seconds(),
		float64(a.CPUTime())/float64(b.CPUTime()))

	// Deflate A to a 1:2 allocation; the next lottery already uses it.
	if err := tkA.SetAmount(50); err != nil {
		panic(err)
	}
	beforeA, beforeB := a.CPUTime(), b.CPUTime()
	sys.RunFor(60 * sim.Second)
	dA := (a.CPUTime() - beforeA).Seconds()
	dB := (b.CPUTime() - beforeB).Seconds()
	fmt.Printf("next 60s at 1:2  —  A: %6.2fs   B: %6.2fs   ratio %.2f\n",
		dA, dB, dA/dB)

	fmt.Printf("scheduling decisions: %d, preemptions: %d\n",
		sys.Decisions(), sys.Preemptions())
}
