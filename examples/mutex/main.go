// mutex: the paper's §6.1 lottery-scheduled lock. Two groups of
// threads with 2:1 funding contend for one mutex; acquisition rates
// and waiting times track the funding. The holder also inherits the
// waiters' funding through the mutex inheritance ticket, so a poorly
// funded holder cannot be starved while richer threads wait — the
// priority-inversion fix, by funding instead of by priority hackery.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/random"
	"repro/internal/sim"
	"repro/internal/ticket"
)

func main() {
	sys := core.NewSystem(core.WithSeed(11))
	defer sys.Shutdown()
	m := sys.NewMutex("shared", kernel.MutexLottery, random.NewPM(1234))

	type group struct {
		name    string
		tickets ticket.Amount
		acq     int
		wait    sim.Duration
	}
	groups := []*group{
		{name: "rich", tickets: 200},
		{name: "poor", tickets: 100},
	}
	jitter := random.NewPM(5)
	for _, g := range groups {
		g := g
		for i := 0; i < 4; i++ {
			seed := jitter.Uint31()
			th := sys.Spawn(fmt.Sprintf("%s-%d", g.name, i), func(ctx *kernel.Ctx) {
				rng := random.NewPM(seed)
				for {
					before := ctx.Now()
					m.Lock(ctx)
					g.wait += ctx.Now().Sub(before)
					g.acq++
					ctx.Compute(50 * sim.Millisecond) // hold
					m.Unlock(ctx)
					// Think ~50ms with jitter so cycles drift across
					// quantum boundaries and the lock really contends.
					ctx.Compute(sim.Duration(40+rng.Intn(20)) * sim.Millisecond)
				}
			})
			th.Fund(g.tickets)
		}
	}

	sys.RunFor(120 * sim.Second)
	fmt.Println("two minutes of 8-way contention, 2:1 group funding:")
	for _, g := range groups {
		mean := time0(g.wait, g.acq)
		fmt.Printf("  %s: %4d acquisitions, mean wait %v\n", g.name, g.acq, mean)
	}
	fmt.Printf("acquisition ratio: %.2f (funding ratio 2.0; paper observed 1.80)\n",
		float64(groups[0].acq)/float64(groups[1].acq))
}

func time0(total sim.Duration, n int) sim.Duration {
	if n == 0 {
		return 0
	}
	return (total / sim.Duration(n)).Round(sim.Millisecond)
}
