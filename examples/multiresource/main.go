// multiresource: the §6.3 sketch made concrete. Tickets uniformly
// denominate rights for *diverse* resources, so "clients can use
// quantitative comparisons to make decisions involving tradeoffs
// between different resources". Here an application owns both CPU
// tickets and I/O-bandwidth tickets, and a tiny manager thread —
// funded with a small fixed share of the application's CPU, exactly
// the paper's "manager thread could be allocated a small fixed
// percentage (e.g., 1%) of an application's overall funding" — watches
// the pipeline and shifts tickets toward whichever resource is the
// bottleneck.
//
// The app is a two-stage pipeline (compute a chunk, then write it
// out); the workload's compute/IO balance changes halfway through, and
// the manager re-balances without any help from the kernel.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/iodev"
	"repro/internal/kernel"
	"repro/internal/random"
	"repro/internal/sim"
)

func main() {
	sys := core.NewSystem(core.WithSeed(17))
	defer sys.Shutdown()

	disk := iodev.NewDevice(sys.Kernel, "disk", 2e6, random.NewPM(3))

	// Competing load on both resources: a CPU hog and an I/O hog.
	cpuHog := sys.Spawn("cpu-hog", func(ctx *kernel.Ctx) {
		for {
			ctx.Compute(10 * sim.Millisecond)
		}
	})
	cpuHog.Fund(300)
	ioHogStream := disk.NewStream("io-hog", 300)
	ioHog := sys.Spawn("io-hog", func(ctx *kernel.Ctx) {
		for {
			ioHogStream.Transfer(ctx, 40_000)
		}
	})
	ioHog.Fund(50)

	// The application: compute a chunk, write it to disk, repeat.
	// Phase 1 is compute-heavy, phase 2 I/O-heavy.
	appStream := disk.NewStream("app", 100)
	chunks := 0
	computeCost := 30 * sim.Millisecond
	writeBytes := 20_000
	app := sys.Spawn("app", func(ctx *kernel.Ctx) {
		for {
			ctx.Compute(computeCost)
			appStream.Transfer(ctx, writeBytes)
			chunks++
		}
	})
	appTicket := app.Fund(100)

	// The manager: ~1% of the app's funding, woken 4x a second. It
	// compares the app's CPU wait vs I/O wait (via simple progress
	// deltas) and shifts the app's tickets toward the bottleneck.
	manager := sys.Spawn("app-manager", func(ctx *kernel.Ctx) {
		lastCPU := app.CPUTime()
		lastIO := appStream.BytesServed()
		for {
			ctx.Sleep(250 * sim.Millisecond)
			ctx.Compute(1 * sim.Millisecond) // the manager's own work
			cpuDelta := (app.CPUTime() - lastCPU).Seconds()
			ioDelta := float64(appStream.BytesServed()-lastIO) / 2e6 // seconds of disk time
			lastCPU, lastIO = app.CPUTime(), appStream.BytesServed()
			// Whichever resource the app consumed less of is where it
			// is starving; shift weight there.
			if cpuDelta < ioDelta {
				_ = appTicket.SetAmount(200) // more CPU share
				appStream.SetTickets(50)
			} else {
				_ = appTicket.SetAmount(50)
				appStream.SetTickets(200)
			}
		}
	})
	manager.Fund(1) // ~1% of the app's 100

	report := func(phase string, secs float64, c0 int) int {
		fmt.Printf("%-28s %6.1f chunks/s  (cpu-hog %4.1fs CPU, io-hog %5.1f MB)\n",
			phase, float64(chunks-c0)/secs,
			cpuHog.CPUTime().Seconds(), float64(ioHogStream.BytesServed())/1e6)
		return chunks
	}

	sys.RunFor(60 * sim.Second)
	c := report("phase 1 (compute-heavy):", 60, 0)

	// Phase 2: the workload turns I/O-heavy.
	computeCost = 5 * sim.Millisecond
	writeBytes = 120_000
	sys.RunFor(60 * sim.Second)
	report("phase 2 (I/O-heavy, managed):", 60, c)

	fmt.Printf("manager consumed %.3fs CPU over 120s (~%.1f%% of the app's)\n",
		manager.CPUTime().Seconds(),
		100*float64(manager.CPUTime())/float64(app.CPUTime()))
}
