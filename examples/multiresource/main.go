// multiresource: the §6.3 sketch made concrete — tickets uniformly
// denominate rights for *diverse* resources.
//
// The default mode runs the wall-clock multi-resource runtime
// (internal/rt + internal/rt/resource): three tenants funded 2:3:5
// from one base currency drive CPU worker slots, a memory reservation
// pool, and an I/O token bucket past saturation at once. Each tenant
// is "heavy" on a different resource, yet every pool is arbitrated by
// the same tickets — dispatch lotteries for CPU, §6.2 inverse-lottery
// reclamation for memory, lottery-split refills for I/O — so each
// tenant's dominant share lands on its ticket share and no tenant
// corners the resource it is hungriest for.
//
// With -sim the original discrete-event demo runs instead: an
// application owns both CPU tickets and I/O-bandwidth tickets, and a
// tiny manager thread — funded with a small fixed share of the
// application's CPU, exactly the paper's "manager thread could be
// allocated a small fixed percentage (e.g., 1%) of an application's
// overall funding" — watches the pipeline and shifts tickets toward
// whichever resource is the bottleneck.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/iodev"
	"repro/internal/kernel"
	"repro/internal/random"
	"repro/internal/rt"
	"repro/internal/rt/resource"
	"repro/internal/sim"
	"repro/internal/ticket"
)

func main() {
	simMode := flag.Bool("sim", false, "run the discrete-event manager-thread demo instead of the wall-clock runtime")
	flag.Parse()
	if *simMode {
		runSim()
		return
	}
	runRT()
}

// runRT saturates all three wall-clock pools at once and reports each
// tenant's per-resource shares against its ticket share.
func runRT() {
	const (
		memCapacity = 1 << 20 // 1 MiB pool, overcommitted 1.5x below
		ioRate      = 200_000 // tokens/sec
		warmup      = 1 * time.Second
		window      = 2 * time.Second
	)
	ledger := resource.NewLedger(resource.Config{
		MemCapacity: memCapacity,
		IORate:      ioRate,
		IOBurst:     2048,
		Seed:        21,
	})
	d := rt.New(rt.Config{Workers: 4, QueueCap: 4096, Seed: 7, Resources: ledger})
	defer d.Close()

	// One task body for everyone: hold a worker slot briefly. A
	// tenant's "heaviness" is its demand shape, not its entitlement.
	hold := func() { time.Sleep(150 * time.Microsecond) }

	type spec struct {
		name      string
		tickets   int64
		memChunk  int64 // bytes per reservation
		memDemand int64 // bytes kept outstanding (sums to 1.5x capacity)
		ioFeeders int   // concurrent token-reserving submitters
		cpuDepth  int   // plain CPU tasks kept in flight
	}
	specs := []spec{
		{"cpu-heavy", 200, 4096, memCapacity * 3 / 10, 2, 512},
		{"mem-heavy", 300, 8192, memCapacity * 45 / 100, 2, 128},
		{"io-heavy", 500, 4096, memCapacity * 75 / 100, 6, 128},
	}
	var ticketTotal int64
	for _, s := range specs {
		ticketTotal += s.tickets
	}

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	feed := func(c *rt.Client, res rt.Reserve, depth int) {
		defer wg.Done()
		var inflight []*rt.Task
		for ctx.Err() == nil {
			if len(inflight) < depth {
				t, err := c.SubmitReserve(ctx, hold, res)
				if err != nil {
					return
				}
				inflight = append(inflight, t)
				continue
			}
			t := inflight[0]
			inflight = inflight[1:]
			_ = t.WaitCtx(ctx)
		}
	}
	for _, s := range specs {
		tn, err := d.NewTenant(s.name, ticket.Amount(s.tickets))
		if err != nil {
			log.Fatal(err)
		}
		mk := func(kind string) *rt.Client {
			c, err := tn.NewClient(s.name+"/"+kind, 100)
			if err != nil {
				log.Fatal(err)
			}
			return c
		}
		wg.Add(2 + s.ioFeeders)
		go feed(mk("cpu"), rt.Reserve{}, s.cpuDepth)
		go feed(mk("mem"), rt.Reserve{MemBytes: s.memChunk}, int(s.memDemand/s.memChunk))
		ioc := mk("io")
		for i := 0; i < s.ioFeeders; i++ {
			go func() {
				defer wg.Done()
				for ctx.Err() == nil {
					if err := ioc.SubmitDetachedReserve(ctx, hold, rt.Reserve{IOTokens: 128}); err != nil {
						return
					}
				}
			}()
		}
	}

	time.Sleep(warmup)
	base := ledger.Snapshot()
	time.Sleep(window)
	end := ledger.Snapshot()
	cancel()
	wg.Wait()

	byName := func(s resource.Snapshot) map[string]resource.TenantSnapshot {
		m := make(map[string]resource.TenantSnapshot)
		for _, ts := range s.Tenants {
			m[ts.Name] = ts
		}
		return m
	}
	b, e := byName(base), byName(end)
	type usage struct{ cpu, mem, io float64 }
	var total usage
	used := make(map[string]usage)
	for _, s := range specs {
		u := usage{
			cpu: e[s.name].CPUSeconds - b[s.name].CPUSeconds,
			mem: float64(e[s.name].MemResident),
			io:  float64(e[s.name].IOConsumed - b[s.name].IOConsumed),
		}
		used[s.name] = u
		total.cpu += u.cpu
		total.mem += u.mem
		total.io += u.io
	}
	sort.Slice(specs, func(i, j int) bool { return specs[i].tickets < specs[j].tickets })
	fmt.Printf("one currency, three pools: %v window after %v warmup\n", window, warmup)
	fmt.Printf("%-10s %8s %8s %8s %8s %10s\n", "tenant", "tickets", "cpu", "mem", "io", "dominant")
	for _, s := range specs {
		u := used[s.name]
		cpu, mem, io := u.cpu/total.cpu, u.mem/total.mem, u.io/total.io
		dominant := max3(cpu, mem, io)
		fmt.Printf("%-10s %7.1f%% %7.1f%% %7.1f%% %7.1f%% %9.1f%%\n",
			s.name, 100*float64(s.tickets)/float64(ticketTotal),
			100*cpu, 100*mem, 100*io, 100*dominant)
	}
	fmt.Printf("reclaims %d, io grants %d — heaviness shaped demand, tickets shaped shares\n",
		end.Reclaims, end.IOGrants)
}

func max3(a, b, c float64) float64 {
	if b > a {
		a = b
	}
	if c > a {
		a = c
	}
	return a
}

// runSim is the original discrete-event demo: a two-stage pipeline
// (compute a chunk, then write it out) whose compute/IO balance
// changes halfway through, re-balanced by a manager thread without
// any help from the kernel.
func runSim() {
	sys := core.NewSystem(core.WithSeed(17))
	defer sys.Shutdown()

	disk := iodev.NewDevice(sys.Kernel, "disk", 2e6, random.NewPM(3))

	// Competing load on both resources: a CPU hog and an I/O hog.
	cpuHog := sys.Spawn("cpu-hog", func(ctx *kernel.Ctx) {
		for {
			ctx.Compute(10 * sim.Millisecond)
		}
	})
	cpuHog.Fund(300)
	ioHogStream := disk.NewStream("io-hog", 300)
	ioHog := sys.Spawn("io-hog", func(ctx *kernel.Ctx) {
		for {
			ioHogStream.Transfer(ctx, 40_000)
		}
	})
	ioHog.Fund(50)

	// The application: compute a chunk, write it to disk, repeat.
	// Phase 1 is compute-heavy, phase 2 I/O-heavy.
	appStream := disk.NewStream("app", 100)
	chunks := 0
	computeCost := 30 * sim.Millisecond
	writeBytes := 20_000
	app := sys.Spawn("app", func(ctx *kernel.Ctx) {
		for {
			ctx.Compute(computeCost)
			appStream.Transfer(ctx, writeBytes)
			chunks++
		}
	})
	appTicket := app.Fund(100)

	// The manager: ~1% of the app's funding, woken 4x a second. It
	// compares the app's CPU wait vs I/O wait (via simple progress
	// deltas) and shifts the app's tickets toward the bottleneck.
	manager := sys.Spawn("app-manager", func(ctx *kernel.Ctx) {
		lastCPU := app.CPUTime()
		lastIO := appStream.BytesServed()
		for {
			ctx.Sleep(250 * sim.Millisecond)
			ctx.Compute(1 * sim.Millisecond) // the manager's own work
			cpuDelta := (app.CPUTime() - lastCPU).Seconds()
			ioDelta := float64(appStream.BytesServed()-lastIO) / 2e6 // seconds of disk time
			lastCPU, lastIO = app.CPUTime(), appStream.BytesServed()
			// Whichever resource the app consumed less of is where it
			// is starving; shift weight there.
			if cpuDelta < ioDelta {
				_ = appTicket.SetAmount(200) // more CPU share
				appStream.SetTickets(50)
			} else {
				_ = appTicket.SetAmount(50)
				appStream.SetTickets(200)
			}
		}
	})
	manager.Fund(1) // ~1% of the app's 100

	report := func(phase string, secs float64, c0 int) int {
		fmt.Printf("%-28s %6.1f chunks/s  (cpu-hog %4.1fs CPU, io-hog %5.1f MB)\n",
			phase, float64(chunks-c0)/secs,
			cpuHog.CPUTime().Seconds(), float64(ioHogStream.BytesServed())/1e6)
		return chunks
	}

	sys.RunFor(60 * sim.Second)
	c := report("phase 1 (compute-heavy):", 60, 0)

	// Phase 2: the workload turns I/O-heavy.
	computeCost = 5 * sim.Millisecond
	writeBytes = 120_000
	sys.RunFor(60 * sim.Second)
	report("phase 2 (I/O-heavy, managed):", 60, c)

	fmt.Printf("manager consumed %.3fs CPU over 120s (~%.1f%% of the app's)\n",
		manager.CPUTime().Seconds(),
		100*float64(manager.CPUTime())/float64(app.CPUTime()))
}
