// dbserver: the paper's §5.3 client-server scenario. A multithreaded
// text-search server holds no tickets of its own — every query runs on
// rights transferred from the calling client over the RPC port — so
// clients with an 8:3:1 allocation see 8:3:1 service, and a client's
// importance follows it through the server automatically (no priority
// inversion, no server-side tuning).
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/ticket"
	"repro/internal/workload"
	"repro/internal/workload/textgen"
)

func main() {
	sys := core.NewSystem(core.WithSeed(7))
	defer sys.Shutdown()

	// A scaled-down database (500 KB instead of 4.6 MB) keeps this
	// example snappy; the needle is still planted 8 times.
	corpus := textgen.Corpus(1, 500_000, textgen.DefaultNeedle, textgen.DefaultPlantCount)
	server := workload.NewDBServer(sys.Kernel, workload.DBServerConfig{
		Corpus:   corpus,
		Workers:  3,
		ScanRate: 1e6, // 1 MB/s of CPU -> 0.5 s per query
	})

	type spec struct {
		name    string
		tickets int64
	}
	clients := []spec{{"gold", 800}, {"silver", 300}, {"bronze", 100}}
	dbc := make([]*workload.DBClient, len(clients))
	for i, s := range clients {
		dbc[i] = workload.NewDBClient(s.name, server)
		th := sys.Spawn(s.name, dbc[i].Body())
		th.Fund(ticket.Amount(s.tickets))
	}

	sys.RunFor(300 * sim.Second)

	fmt.Println("300 simulated seconds of continuous querying (8:3:1 allocation):")
	fmt.Printf("%-8s %8s %10s %12s %14s\n", "client", "tickets", "queries", "matches", "mean resp(s)")
	for i, s := range clients {
		rts := dbc[i].ResponseTimes()
		var mean float64
		for _, r := range rts {
			mean += r
		}
		if len(rts) > 0 {
			mean /= float64(len(rts))
		}
		fmt.Printf("%-8s %8d %10d %12d %14.2f\n",
			s.name, s.tickets, dbc[i].Completed(), dbc[i].LastCount(), mean)
	}
	fmt.Printf("server answered %d queries with zero tickets of its own\n", server.Queries())
}
