// video: the paper's §5.4 multimedia scenario. Three MPEG viewers
// share the CPU 3:2:1; halfway through, the user re-focuses on viewer
// C by swapping B's and C's allocations — frame rates follow
// immediately. Compare with the paper's account of doing this at
// application level with feedback loops and "mixed success": here it
// is two SetAmount calls.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/ticket"
	"repro/internal/workload"
)

func main() {
	sys := core.NewSystem(core.WithSeed(42))
	defer sys.Shutdown()

	// The single-threaded display server (the X11 stand-in) draws
	// every frame; its round-robin processing slightly compresses the
	// ratios, exactly as §5.4 observed.
	display := workload.NewDisplayServer(sys.Kernel, 50)

	names := []string{"A", "B", "C"}
	alloc := []ticket.Amount{300, 200, 100}
	viewers := make([]*workload.Viewer, 3)
	tks := make([]*ticket.Ticket, 3)
	for i := range viewers {
		viewers[i] = &workload.Viewer{Name: names[i], Display: display}
		th := sys.Spawn(names[i], viewers[i].Body())
		tks[i] = th.Fund(alloc[i])
	}

	snapshot := func() [3]uint64 {
		var s [3]uint64
		for i, v := range viewers {
			s[i] = v.Frames()
		}
		return s
	}

	sys.RunFor(150 * sim.Second)
	phase1 := snapshot()
	fmt.Println("phase 1 (A:B:C = 3:2:1 for 150s):")
	for i, n := range names {
		fmt.Printf("  viewer %s: %4d frames (%.2f/s)\n", n, phase1[i], float64(phase1[i])/150)
	}

	// Re-focus: B down to 100, C up to 200.
	if err := tks[1].SetAmount(100); err != nil {
		panic(err)
	}
	if err := tks[2].SetAmount(200); err != nil {
		panic(err)
	}
	sys.RunFor(150 * sim.Second)
	phase2 := snapshot()
	fmt.Println("phase 2 (A:B:C = 3:1:2 for another 150s):")
	for i, n := range names {
		d := phase2[i] - phase1[i]
		fmt.Printf("  viewer %s: %4d frames (%.2f/s)\n", n, d, float64(d)/150)
	}
	fmt.Printf("display server drew %d frames total\n", display.Displayed())
}
