// montecarlo: the paper's §5.2 dynamic-control scenario. Three
// identical Monte-Carlo integrations start staggered in time; each
// periodically re-funds itself proportionally to the square of its
// relative error. A freshly started experiment therefore sprints on a
// large CPU share and tapers off as it converges — the late starters
// catch up with the early ones, with no central coordinator and no
// scheduler surgery, purely through ticket inflation inside the
// scientists' shared currency.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/ticket"
	"repro/internal/workload"
)

func main() {
	sys := core.NewSystem(core.WithSeed(99))
	defer sys.Shutdown()

	// The three tasks trust each other: they share one currency, so
	// their mutual inflation cannot dilute anyone outside it (§3.2).
	mc := sys.Tickets().MustCurrency("montecarlo", "scientist")
	sys.Tickets().Base().MustIssue(1000, mc)

	const tasks = 3
	const stagger = 60 * sim.Second
	ts := make([]*workload.MonteCarlo, tasks)
	for i := 0; i < tasks; i++ {
		i := i
		name := fmt.Sprintf("experiment-%d", i)
		ts[i] = workload.NewMonteCarlo(name, uint32(1000+i))
		sys.Engine().Schedule(sim.Time(sim.Duration(i)*stagger), func() {
			th := sys.Spawn(name, ts[i].Body())
			tk := mc.MustIssue(ticket.Amount(int64(1e9)), th.Holder())
			ts[i].AttachFunding(tk)
		})
	}

	// Report progress once a virtual minute.
	for minute := 1; minute <= 6; minute++ {
		sys.RunFor(60 * sim.Second)
		fmt.Printf("t=%3ds ", minute*60)
		for i, t := range ts {
			fmt.Printf(" exp%d: %8d trials (err %.4f)", i, t.Trials(), t.RelativeError())
		}
		fmt.Println()
	}
	fmt.Println("\nall three estimates of ∫x²dx over [0,1] (true value 0.3333):")
	for i, t := range ts {
		fmt.Printf("  experiment-%d: %.5f after %d trials\n", i, t.Estimate(), t.Trials())
	}
}
